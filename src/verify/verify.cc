#include "verify/verify.h"

#include <functional>
#include <sstream>

#include "emit/relax.h"
#include "layout/materialize.h"
#include "layout/realization.h"
#include "support/types.h"

namespace balign {

const char *
obligationName(Obligation obligation)
{
    switch (obligation) {
      case Obligation::ProcBijection: return "proc-bijection";
      case Obligation::BlockBijection: return "block-bijection";
      case Obligation::EntryFirst: return "entry-first";
      case Obligation::AddressContiguity: return "address-contiguity";
      case Obligation::SizeAccounting: return "size-accounting";
      case Obligation::SuccPreservation: return "succ-preservation";
      case Obligation::JumpTargets: return "jump-targets";
      case Obligation::RelaxContiguity: return "relax-contiguity";
      case Obligation::DisplacementRange: return "displacement-range";
    }
    return "?";
}

const char *
obligationSummary(Obligation obligation)
{
    switch (obligation) {
      case Obligation::ProcBijection:
        return "one procedure layout per procedure, in id order";
      case Obligation::BlockBijection:
        return "layout order is a bijection onto the CFG blocks";
      case Obligation::EntryFirst:
        return "the entry block keeps the procedure's first address";
      case Obligation::AddressContiguity:
        return "addresses are gap-free and procedures contiguous";
      case Obligation::SizeAccounting:
        return "sizes and branch/jump addresses follow from the "
               "transformation flags";
      case Obligation::SuccPreservation:
        return "every realized successor map equals the CFG successor "
               "map modulo condition reversal and jump insertion";
      case Obligation::JumpTargets:
        return "every inserted jump trails its block and targets the "
               "displaced successor";
      case Obligation::RelaxContiguity:
        return "relaxed byte addresses are gap-free and sized by the "
               "encoding model";
      case Obligation::DisplacementRange:
        return "every branch displacement fits its chosen encoding form";
    }
    return "?";
}

std::size_t
VerifyResult::totalChecks() const
{
    std::size_t n = 0;
    for (const ObligationRecord &record : obligations)
        n += record.checks;
    return n;
}

std::string
formatVerifyFailure(const VerifyFailure &failure)
{
    std::ostringstream out;
    out << "verify[" << obligationName(failure.obligation) << "]";
    if (failure.proc != kNoProc)
        out << " proc=" << failure.proc;
    if (failure.block != kNoBlock)
        out << " block=" << failure.block;
    out << ": " << failure.detail;
    return out.str();
}

namespace {

/// Tally-and-record helper: every call is one discharged (or failed)
/// proof-obligation instance. @p detail is only rendered on failure.
class Checker
{
  public:
    bool
    check(Obligation obligation, bool ok, ProcId proc, BlockId block,
          const std::function<std::string()> &detail)
    {
        ObligationRecord &record =
            result.obligations[static_cast<std::size_t>(obligation)];
        ++record.checks;
        if (!ok) {
            ++record.failures;
            result.failures.push_back(
                VerifyFailure{obligation, proc, block, detail()});
        }
        return ok;
    }

    VerifyResult result;
};

std::string
str(const std::ostringstream &out)
{
    return out.str();
}

/// The successor reached over edge index @p index, or kNoBlock.
BlockId
edgeDst(const Procedure &proc, std::int64_t index)
{
    if (index < 0)
        return kNoBlock;
    const Edge &edge = proc.edge(static_cast<std::uint32_t>(index));
    return edge.dst < proc.numBlocks() ? edge.dst : kNoBlock;
}

/// block-bijection: layout.order is a permutation of [0, numBlocks) with
/// consistent cached positions. Everything after this obligation needs a
/// walkable order, so a failure gates the rest of the procedure.
bool
checkBlockBijection(Checker &checker, const Procedure &proc,
                    const ProcLayout &layout)
{
    const ProcId pid = proc.id();
    const std::size_t n = proc.numBlocks();

    if (!checker.check(Obligation::BlockBijection,
                       layout.order.size() == n, pid, kNoBlock, [&] {
                           std::ostringstream out;
                           out << "layout order lists "
                               << layout.order.size() << " of " << n
                               << " blocks";
                           return str(out);
                       }))
        return false;

    std::vector<unsigned> seen(n, 0);
    for (const BlockId id : layout.order) {
        if (!checker.check(Obligation::BlockBijection, id < n, pid, id,
                           [&] {
                               std::ostringstream out;
                               out << "order names block " << id
                                   << " outside the " << n
                                   << "-block procedure";
                               return str(out);
                           }))
            return false;
        ++seen[id];
    }
    bool bijective = true;
    for (BlockId id = 0; id < n; ++id) {
        bijective &= checker.check(
            Obligation::BlockBijection, seen[id] == 1, pid, id, [&] {
                std::ostringstream out;
                out << "block appears " << seen[id]
                    << " times in the order (must be exactly once)";
                return str(out);
            });
    }
    if (!bijective)
        return false;

    for (std::uint32_t i = 0; i < layout.order.size(); ++i) {
        const BlockId id = layout.order[i];
        checker.check(Obligation::BlockBijection,
                      layout.blocks[id].orderIndex == i, pid, id, [&] {
                          std::ostringstream out;
                          out << "cached orderIndex "
                              << layout.blocks[id].orderIndex
                              << " disagrees with position " << i;
                          return str(out);
                      });
    }
    return true;
}

/// size-accounting: per-block arithmetic from the CFG size plus the
/// layout's own transformation flags.
void
checkSizeAccounting(Checker &checker, const Procedure &proc,
                    const ProcLayout &layout)
{
    const ProcId pid = proc.id();
    for (const BlockId id : layout.order) {
        const BasicBlock &block = proc.block(id);
        const BlockLayout &bl = layout.blocks[id];
        const std::uint32_t expect_base =
            block.numInstrs - (bl.jumpRemoved ? 1 : 0);
        const std::uint32_t expect_final =
            expect_base + (bl.jumpInserted ? 1 : 0);
        checker.check(Obligation::SizeAccounting,
                      bl.baseInstrs == expect_base &&
                          bl.finalInstrs == expect_final,
                      pid, id, [&] {
                          std::ostringstream out;
                          out << "sizes base=" << bl.baseInstrs
                              << "/final=" << bl.finalInstrs
                              << " do not follow from " << block.numInstrs
                              << " CFG instructions with the block's "
                                 "flags (expected base=" << expect_base
                              << "/final=" << expect_final << ")";
                          return str(out);
                      });

        const Addr expect_branch =
            block.hasBranchInstr() && !bl.jumpRemoved
                ? bl.addr + block.numInstrs - 1
                : kNoAddr;
        checker.check(Obligation::SizeAccounting,
                      bl.branchAddr == expect_branch, pid, id, [&] {
                          std::ostringstream out;
                          out << "branchAddr " << bl.branchAddr
                              << " is not the terminator slot (expected "
                              << expect_branch << ")";
                          return str(out);
                      });
        const Addr expect_jump =
            bl.jumpInserted ? bl.addr + block.numInstrs : kNoAddr;
        checker.check(Obligation::SizeAccounting, bl.jumpAddr == expect_jump,
                      pid, id, [&] {
                          std::ostringstream out;
                          out << "jumpAddr " << bl.jumpAddr
                              << " does not trail the block (expected "
                              << expect_jump << ")";
                          return str(out);
                      });
    }
}

/// address-contiguity: the gap-free walk of the order reproduces every
/// block address and the procedure footprint. Expected sizes are
/// re-derived so one corrupted address yields one failure.
void
checkAddresses(Checker &checker, const Procedure &proc,
               const ProcLayout &layout)
{
    const ProcId pid = proc.id();
    Addr addr = layout.base;
    for (const BlockId id : layout.order) {
        const BasicBlock &block = proc.block(id);
        const BlockLayout &bl = layout.blocks[id];
        checker.check(Obligation::AddressContiguity, bl.addr == addr, pid,
                      id, [&] {
                          std::ostringstream out;
                          out << "block placed at address " << bl.addr
                              << " but the gap-free walk expects " << addr;
                          return str(out);
                      });
        addr += block.numInstrs - (bl.jumpRemoved ? 1 : 0) +
                (bl.jumpInserted ? 1 : 0);
    }
    checker.check(Obligation::AddressContiguity,
                  layout.totalInstrs == addr - layout.base, pid, kNoBlock,
                  [&] {
                      std::ostringstream out;
                      out << "procedure footprint " << layout.totalInstrs
                          << " disagrees with the sum of block sizes "
                          << (addr - layout.base);
                      return str(out);
                  });
}

/**
 * succ-preservation: re-derives each block's realized successor map from
 * the terminator, the realization and the layout adjacency, and proves it
 * equal to the CFG successor map. Condition reversal (TakenAdjacent /
 * NeitherJumpToTaken) and inserted/removed unconditional jumps are the
 * only permitted differences; any dropped, duplicated or retargeted edge
 * fails here with the block named.
 */
void
checkSuccPreservation(Checker &checker, const Procedure &proc,
                      const ProcLayout &layout)
{
    const ProcId pid = proc.id();
    for (std::uint32_t i = 0; i < layout.order.size(); ++i) {
        const BlockId id = layout.order[i];
        const BasicBlock &block = proc.block(id);
        const BlockLayout &bl = layout.blocks[id];
        const BlockId next =
            i + 1 < layout.order.size() ? layout.order[i + 1] : kNoBlock;

        switch (block.term) {
          case Terminator::CondBranch: {
            const BlockId taken_dst = edgeDst(proc, proc.takenEdge(id));
            const BlockId fall_dst =
                edgeDst(proc, proc.fallThroughEdge(id));
            if (!checker.check(Obligation::SuccPreservation,
                               taken_dst != kNoBlock &&
                                   fall_dst != kNoBlock,
                               pid, id, [&] {
                                   return std::string(
                                       "conditional block lacks a taken "
                                       "or fall-through successor; its "
                                       "realized branch has no defined "
                                       "targets");
                               }))
                break;

            // The branch instruction covers one successor
            // (branchTargetKind); the other must be reached by adjacency
            // or by the inserted jump. Adjacent realizations pin the
            // not-branch successor to the next block — if the CFG edge
            // was retargeted, this is where it surfaces.
            const bool needs_jump =
                bl.cond == CondRealization::NeitherJumpToFall ||
                bl.cond == CondRealization::NeitherJumpToTaken;
            const BlockId displaced =
                branchTargetKind(bl.cond) == EdgeKind::Taken ? fall_dst
                                                             : taken_dst;
            if (!needs_jump) {
                checker.check(Obligation::SuccPreservation,
                              displaced == next, pid, id, [&] {
                                  std::ostringstream out;
                                  out << condRealizationName(bl.cond)
                                      << " reaches successor " << displaced
                                      << " by adjacency but the next "
                                         "block in layout is " << next
                                      << "; the edge would be retargeted";
                                  return str(out);
                              });
            }
            checker.check(Obligation::SuccPreservation,
                          bl.jumpInserted == needs_jump, pid, id, [&] {
                              std::ostringstream out;
                              out << condRealizationName(bl.cond)
                                  << (needs_jump
                                          ? " must reach the displaced "
                                            "successor through an "
                                            "inserted jump"
                                          : " must not insert a jump")
                                  << " but jumpInserted is "
                                  << (bl.jumpInserted ? "true" : "false");
                              return str(out);
                          });
            checker.check(Obligation::SuccPreservation, !bl.jumpRemoved,
                          pid, id, [&] {
                              return std::string(
                                  "conditional block marked jumpRemoved: "
                                  "deleting the branch would drop a "
                                  "successor");
                          });
            break;
          }
          case Terminator::UncondBranch: {
            const BlockId taken_dst = edgeDst(proc, proc.takenEdge(id));
            if (!checker.check(Obligation::SuccPreservation,
                               taken_dst != kNoBlock, pid, id, [&] {
                                   return std::string(
                                       "unconditional block lacks its "
                                       "taken successor");
                               }))
                break;
            // Removing the jump rewires the block onto pure fall-through:
            // only legal when the target is the next block, anything else
            // retargets the edge.
            checker.check(Obligation::SuccPreservation,
                          !bl.jumpRemoved || taken_dst == next, pid, id,
                          [&] {
                              std::ostringstream out;
                              out << "jump to block " << taken_dst
                                  << " was removed but the next block in "
                                     "layout is " << next
                                  << "; control would fall into the "
                                     "wrong block";
                              return str(out);
                          });
            checker.check(Obligation::SuccPreservation, !bl.jumpInserted,
                          pid, id, [&] {
                              return std::string(
                                  "unconditional block marked "
                                  "jumpInserted: the block already ends "
                                  "in a jump, a second one would add an "
                                  "edge");
                          });
            break;
          }
          case Terminator::FallThrough: {
            const BlockId fall_dst =
                edgeDst(proc, proc.fallThroughEdge(id));
            // Without an inserted jump the successor (if any) must be
            // adjacent; with one, the jump covers it (target proven under
            // jump-targets). A jump with no successor edge would invent
            // an edge.
            checker.check(Obligation::SuccPreservation,
                          bl.jumpInserted ? fall_dst != kNoBlock
                                          : (fall_dst == kNoBlock ||
                                             fall_dst == next),
                          pid, id, [&] {
                              std::ostringstream out;
                              if (bl.jumpInserted) {
                                  out << "inserted jump has no CFG "
                                         "successor to target";
                              } else {
                                  out << "fall-through successor "
                                      << fall_dst
                                      << " is not the next block in "
                                         "layout (" << next
                                      << ") and no jump was inserted; "
                                         "the edge is dropped";
                              }
                              return str(out);
                          });
            checker.check(Obligation::SuccPreservation, !bl.jumpRemoved,
                          pid, id, [&] {
                              return std::string(
                                  "fall-through block marked jumpRemoved "
                                  "but has no branch instruction to "
                                  "delete");
                          });
            break;
          }
          case Terminator::IndirectJump:
          case Terminator::Return:
            // Never transformed: targets are dynamic (indirect) or the
            // return stack's. Any flag would change the successor map.
            checker.check(Obligation::SuccPreservation,
                          !bl.jumpInserted && !bl.jumpRemoved, pid, id,
                          [&] {
                              std::ostringstream out;
                              out << terminatorName(block.term)
                                  << " block marked jumpInserted/"
                                     "jumpRemoved; these terminators are "
                                     "never transformed";
                              return str(out);
                          });
            break;
        }
    }
}

/// jump-targets: each inserted jump physically trails its block and its
/// implied target is exactly the successor the realization displaced.
void
checkJumpTargets(Checker &checker, const Procedure &proc,
                 const ProcLayout &layout)
{
    const ProcId pid = proc.id();
    for (const BlockId id : layout.order) {
        const BasicBlock &block = proc.block(id);
        const BlockLayout &bl = layout.blocks[id];
        if (!bl.jumpInserted)
            continue;

        BlockId displaced = kNoBlock;
        if (block.term == Terminator::CondBranch) {
            const BlockId taken_dst = edgeDst(proc, proc.takenEdge(id));
            const BlockId fall_dst =
                edgeDst(proc, proc.fallThroughEdge(id));
            displaced = branchTargetKind(bl.cond) == EdgeKind::Taken
                            ? fall_dst
                            : taken_dst;
        } else if (block.term == Terminator::FallThrough) {
            displaced = edgeDst(proc, proc.fallThroughEdge(id));
        }
        // (Other terminators with jumpInserted already failed
        // succ-preservation; there is no displaced successor to prove.)

        checker.check(Obligation::JumpTargets, displaced != kNoBlock, pid,
                      id, [&] {
                          return std::string(
                              "inserted jump displaces no CFG successor; "
                              "its target is undefined");
                      });
        if (displaced == kNoBlock)
            continue;
        checker.check(Obligation::JumpTargets,
                      bl.jumpAddr == bl.addr + block.numInstrs, pid, id,
                      [&] {
                          std::ostringstream out;
                          out << "inserted jump at " << bl.jumpAddr
                              << " does not trail the block (expected "
                              << bl.addr + block.numInstrs
                              << "); the not-branch path would not "
                                 "reach it";
                          return str(out);
                      });
        checker.check(
            Obligation::JumpTargets,
            displaced < layout.blocks.size(), pid, id, [&] {
                std::ostringstream out;
                out << "displaced successor " << displaced
                    << " has no layout record to target";
                return str(out);
            });
    }
}

}  // namespace

VerifyResult
verifyLayout(const Program &program, const ProgramLayout &layout)
{
    Checker checker;

    if (!checker.check(Obligation::ProcBijection,
                       layout.procs.size() == program.numProcs(), kNoProc,
                       kNoBlock, [&] {
                           std::ostringstream out;
                           out << "layout has " << layout.procs.size()
                               << " procedure records for a "
                               << program.numProcs()
                               << "-procedure program";
                           return str(out);
                       }))
        return std::move(checker.result);

    Addr base = 0;
    for (ProcId p = 0; p < program.numProcs(); ++p) {
        const Procedure &proc = program.proc(p);
        const ProcLayout &pl = layout.procs[p];

        const bool sized = checker.check(
            Obligation::ProcBijection,
            pl.blocks.size() == proc.numBlocks(), p, kNoBlock, [&] {
                std::ostringstream out;
                out << "layout has " << pl.blocks.size()
                    << " block records for a " << proc.numBlocks()
                    << "-block procedure";
                return str(out);
            });

        checker.check(Obligation::AddressContiguity, pl.base == base, p,
                      kNoBlock, [&] {
                          std::ostringstream out;
                          out << "procedure base " << pl.base
                              << " leaves a gap or overlap; contiguous "
                                 "placement expects " << base;
                          return str(out);
                      });
        base = pl.base + pl.totalInstrs;

        if (!sized || !checkBlockBijection(checker, proc, pl))
            continue;  // per-block obligations need a walkable order

        if (!pl.order.empty()) {
            checker.check(Obligation::EntryFirst,
                          pl.order.front() == proc.entry(), p,
                          pl.order.front(), [&] {
                              std::ostringstream out;
                              out << "layout starts with block "
                                  << pl.order.front()
                                  << " but the procedure entry is block "
                                  << proc.entry()
                                  << "; callers jump to the first "
                                     "address";
                              return str(out);
                          });
        }
        checkAddresses(checker, proc, pl);
        checkSizeAccounting(checker, proc, pl);
        checkSuccPreservation(checker, proc, pl);
        checkJumpTargets(checker, proc, pl);
    }

    checker.check(Obligation::AddressContiguity,
                  layout.totalInstrs == base, kNoProc, kNoBlock, [&] {
                      std::ostringstream out;
                      out << "program footprint " << layout.totalInstrs
                          << " disagrees with the last procedure's end "
                          << base;
                      return str(out);
                  });
    return std::move(checker.result);
}

VerifyResult
verifyRelaxedLayout(const Program &program, const ProgramLayout &layout,
                    const RelaxedLayout &relaxed,
                    const EncodingModel &model)
{
    Checker checker;

    if (!checker.check(Obligation::RelaxContiguity,
                       relaxed.procs.size() == program.numProcs(), kNoProc,
                       kNoBlock, [&] {
                           std::ostringstream out;
                           out << "relaxed layout has "
                               << relaxed.procs.size()
                               << " procedure records for a "
                               << program.numProcs()
                               << "-procedure program";
                           return str(out);
                       }))
        return std::move(checker.result);

    // The word-model instruction enumeration is the specification the
    // byte layout must refine slot for slot.
    const std::vector<LayoutInstr> spec =
        enumerateProgramInstrs(program, layout);
    if (!checker.check(Obligation::RelaxContiguity,
                       relaxed.instrs.size() == spec.size(), kNoProc,
                       kNoBlock, [&] {
                           std::ostringstream out;
                           out << "relaxed layout has "
                               << relaxed.instrs.size() << " slots but the "
                               << "materialized layout enumerates "
                               << spec.size();
                           return str(out);
                       }))
        return std::move(checker.result);

    std::uint64_t cursor = 0;
    for (std::size_t i = 0; i < relaxed.instrs.size(); ++i) {
        const RelaxedInstr &instr = relaxed.instrs[i];
        const LayoutInstr &want = spec[i];

        checker.check(Obligation::RelaxContiguity,
                      instr.cls == want.cls &&
                          instr.wordAddr == want.wordAddr &&
                          instr.proc == want.proc &&
                          instr.block == want.block &&
                          instr.targetBlock == want.targetBlock &&
                          instr.callee == want.callee,
                      want.proc, want.block, [&] {
                          std::ostringstream out;
                          out << "slot " << i << " ("
                              << instrClassName(instr.cls) << " at word "
                              << instr.wordAddr
                              << ") diverges from the materialized slot ("
                              << instrClassName(want.cls) << " at word "
                              << want.wordAddr << ")";
                          return str(out);
                      });

        const unsigned expect_size = model.instrBytes(instr.cls, instr.form);
        const bool fixed_ok =
            model.kind() != EncodingModelKind::FixedWord ||
            instr.byteAddr == instr.wordAddr * kInstrBytes;
        checker.check(Obligation::RelaxContiguity,
                      instr.byteAddr == cursor &&
                          instr.size == expect_size && fixed_ok,
                      instr.proc, instr.block, [&] {
                          std::ostringstream out;
                          out << "slot " << i << " at byte "
                              << instr.byteAddr << " size "
                              << unsigned{instr.size}
                              << ": the gap-free walk expects byte "
                              << cursor << " size " << expect_size;
                          if (!fixed_ok)
                              out << " (fixed-word model requires byte = "
                                  << instr.wordAddr * kInstrBytes << ")";
                          return str(out);
                      });
        cursor += expect_size;
    }
    checker.check(Obligation::RelaxContiguity,
                  relaxed.totalBytes == cursor, kNoProc, kNoBlock, [&] {
                      std::ostringstream out;
                      out << "relaxed footprint " << relaxed.totalBytes
                          << " bytes disagrees with the sum of slot sizes "
                          << cursor;
                      return str(out);
                  });

    // Procedure and block byte bounds must agree with their slots.
    std::uint64_t base = 0;
    std::uint32_t first = 0;
    for (ProcId p = 0; p < program.numProcs(); ++p) {
        const RelaxedProc &proc = relaxed.procs[p];
        std::uint64_t bytes = 0;
        for (std::uint32_t s = 0; s < proc.numInstrs; ++s)
            bytes += relaxed.instrs[proc.firstInstr + s].size;
        checker.check(Obligation::RelaxContiguity,
                      proc.byteBase == base && proc.firstInstr == first &&
                          proc.byteSize == bytes,
                      p, kNoBlock, [&] {
                          std::ostringstream out;
                          out << "procedure bytes [" << proc.byteBase
                              << ", +" << proc.byteSize << ") slots ["
                              << proc.firstInstr << ", +" << proc.numInstrs
                              << ") disagree with contiguous placement at "
                              << base << " (" << bytes << " bytes, slot "
                              << first << ")";
                          return str(out);
                      });
        base += bytes;
        first += proc.numInstrs;

        const ProcLayout &pl = layout.procs[p];
        for (BlockId id = 0; id < proc.blocks.size(); ++id) {
            const RelaxedBlock &block = proc.blocks[id];
            std::uint32_t block_bytes = 0;
            for (std::uint32_t s = 0; s < block.numInstrs; ++s)
                block_bytes +=
                    relaxed.instrs[block.firstInstr + s].size;
            const std::uint64_t expect_addr =
                block.numInstrs > 0
                    ? relaxed.instrs[block.firstInstr].byteAddr
                    : block.byteAddr;
            checker.check(
                Obligation::RelaxContiguity,
                id < pl.blocks.size() &&
                    block.numInstrs == pl.blocks[id].finalInstrs &&
                    block.byteAddr == expect_addr &&
                    block.byteSize == block_bytes,
                p, id, [&] {
                    std::ostringstream out;
                    out << "block bytes [" << block.byteAddr << ", +"
                        << block.byteSize << ") over " << block.numInstrs
                        << " slots disagree with its slot range";
                    return str(out);
                });
        }
    }

    // displacement-range: every targeted slot's displacement is exactly
    // target minus end-of-instruction and representable in its form;
    // forms are Short/Near exactly for relaxable classes.
    for (const RelaxedInstr &instr : relaxed.instrs) {
        const bool relaxable = model.relaxable(instr.cls);
        checker.check(Obligation::DisplacementRange,
                      relaxable ? instr.form != BranchForm::None
                                : instr.form == BranchForm::None,
                      instr.proc, instr.block, [&] {
                          std::ostringstream out;
                          out << instrClassName(instr.cls) << " at byte "
                              << instr.byteAddr << " carries form "
                              << branchFormName(instr.form) << " but is "
                              << (relaxable ? "" : "not ")
                              << "relaxable under " << model.name();
                          return str(out);
                      });
        if (instr.targetBlock == kNoBlock)
            continue;
        if (instr.proc >= relaxed.procs.size() ||
            instr.targetBlock >= relaxed.procs[instr.proc].blocks.size()) {
            checker.check(Obligation::DisplacementRange, false, instr.proc,
                          instr.block, [&] {
                              return std::string(
                                  "branch target block has no relaxed "
                                  "placement");
                          });
            continue;
        }
        const std::uint64_t target =
            relaxed.procs[instr.proc].blocks[instr.targetBlock].byteAddr;
        const std::int64_t disp =
            static_cast<std::int64_t>(target) -
            static_cast<std::int64_t>(instr.byteAddr + instr.size);
        checker.check(
            Obligation::DisplacementRange,
            instr.disp == disp &&
                model.displacementFits(instr.cls, instr.form, disp),
            instr.proc, instr.block, [&] {
                std::ostringstream out;
                out << instrClassName(instr.cls) << " at byte "
                    << instr.byteAddr << " to block " << instr.targetBlock
                    << " records displacement " << instr.disp
                    << " but the target at byte " << target << " is "
                    << disp << " away"
                    << (model.displacementFits(instr.cls, instr.form, disp)
                            ? ""
                            : ", which escapes its form");
                return str(out);
            });
    }

    return std::move(checker.result);
}

}  // namespace balign
