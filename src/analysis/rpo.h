/**
 * @file
 * Depth-first orderings over a CfgView: reachability and reverse
 * postorder.
 *
 * Reverse postorder (RPO) is the canonical iteration order for forward
 * dataflow: every edge except retreating edges goes from a lower to a
 * higher RPO number, so one pass propagates facts along all acyclic
 * paths. The dominator and loop analyses are built on it, and the RPO
 * numbering doubles as the retreating-edge test the irreducibility check
 * needs (dst number <= src number).
 *
 * Only blocks reachable from the entry appear in the ordering; unreachable
 * blocks keep kNoRpoIndex and are ignored by every downstream analysis
 * (the cfg.unreachable-block lint rule reports them separately).
 */

#ifndef BALIGN_ANALYSIS_RPO_H
#define BALIGN_ANALYSIS_RPO_H

#include <limits>
#include <vector>

#include "analysis/cfg_view.h"

namespace balign {

/// RPO number of an unreachable block.
inline constexpr std::uint32_t kNoRpoIndex =
    std::numeric_limits<std::uint32_t>::max();

/// Reverse-postorder numbering of the blocks reachable from the entry.
struct RpoOrder
{
    /// Reachable block ids, in reverse postorder (entry first).
    std::vector<BlockId> order;
    /// Position of each block in `order`; kNoRpoIndex when unreachable.
    std::vector<std::uint32_t> indexOf;

    bool reachable(BlockId id) const
    {
        return id < indexOf.size() && indexOf[id] != kNoRpoIndex;
    }
};

/// Computes the reverse postorder of @p view (iterative DFS, stable:
/// successors are visited in adjacency order).
RpoOrder reversePostorder(const CfgView &view);

/// Blocks reachable from the entry (same traversal as reversePostorder).
std::vector<bool> reachableBlocks(const CfgView &view);

}  // namespace balign

#endif  // BALIGN_ANALYSIS_RPO_H
