/**
 * @file
 * Natural-loop forest with irreducible-region detection.
 *
 * A back edge is an edge u -> h whose destination dominates its source;
 * its natural loop is h plus every block that reaches u without passing
 * through h. Loops sharing a header are merged (one loop per header, the
 * standard normalization), membership is precomputed for O(log n)
 * contains(), and the loops are linked into a nesting forest (parent /
 * depth / innermost-loop-of-block).
 *
 * Irreducibility: a CFG is reducible iff every retreating edge (an edge
 * whose destination does not come later in reverse postorder) is a back
 * edge. Retreating non-back edges therefore witness irreducible regions —
 * multi-entry "loops" that have no header dominating their body. They are
 * reported as-is (the cfg.irreducible lint rule surfaces them); no
 * natural loop is formed for them, which downstream consumers must keep
 * in mind: the loop-based rules (prof.flow, layout.loop-split) and the
 * Try15/ExtTSP hot-path assumptions only see properly nested loops.
 */

#ifndef BALIGN_ANALYSIS_LOOPS_H
#define BALIGN_ANALYSIS_LOOPS_H

#include <limits>
#include <vector>

#include "analysis/dominators.h"

namespace balign {

/// Index sentinel for "no loop".
inline constexpr std::size_t kNoLoop =
    std::numeric_limits<std::size_t>::max();

/// One natural loop (all back edges to one header merged).
struct NaturalLoop
{
    BlockId header = kNoBlock;
    /// Back-edge sources (latches), in discovery order.
    std::vector<BlockId> latches;
    /// Member block ids, sorted ascending; always includes the header.
    std::vector<BlockId> blocks;
    /// Index of the innermost properly-enclosing loop, or kNoLoop.
    std::size_t parent = kNoLoop;
    /// Nesting depth: 1 for outermost loops.
    unsigned depth = 1;

    bool contains(BlockId id) const;
};

/// Every natural loop of one procedure plus the irreducibility witnesses.
struct LoopForest
{
    /// Loops ordered by header RPO number (outer loops before the inner
    /// loops they contain, on reducible CFGs).
    std::vector<NaturalLoop> loops;
    /// Innermost loop index of each block (kNoLoop when in none).
    std::vector<std::size_t> innermost;
    /// Retreating edges that are not back edges: (src, dst) pairs proving
    /// the CFG irreducible. Empty iff the reachable CFG is reducible.
    std::vector<std::pair<BlockId, BlockId>> irreducibleEdges;

    bool irreducible() const { return !irreducibleEdges.empty(); }
};

/// Computes the loop forest of @p view given its dominator tree.
LoopForest computeLoops(const CfgView &view, const DominatorTree &doms);

}  // namespace balign

#endif  // BALIGN_ANALYSIS_LOOPS_H
