#include "analysis/analysis.h"

namespace balign {

ProcAnalysis
ProcAnalysis::of(const Procedure &proc)
{
    CfgView view(proc);
    DominatorTree doms = computeDominators(view);
    LoopForest loops = computeLoops(view, doms);
    return ProcAnalysis{std::move(view), std::move(doms),
                        std::move(loops)};
}

}  // namespace balign
