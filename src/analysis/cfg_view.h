/**
 * @file
 * CfgView: a compact, deduplicated adjacency view of one procedure's CFG.
 *
 * The IR (cfg/procedure.h) stores edges as a flat vector cross-indexed by
 * both endpoints, which is the right shape for profiling and layout but
 * awkward for graph algorithms: traversals want plain successor /
 * predecessor lists, and dominator/loop computations must not be confused
 * by parallel edges (a conditional whose taken and fall-through successors
 * coincide) or by malformed indices on a program that has not passed
 * validation yet. CfgView materializes that shape once:
 *
 *  - successors/predecessors are deduplicated block-id lists;
 *  - out-of-range edge endpoints and stale edge indices are skipped (the
 *    cfg.* lint rules report them; the analyses stay total);
 *  - construction is O(blocks + edges) and the view holds no reference to
 *    the Procedure, so it survives IR mutation.
 *
 * Every analysis in src/analysis/ consumes a CfgView, so the traversal
 * semantics (what counts as an edge, how degenerate input is handled) are
 * defined in exactly one place.
 */

#ifndef BALIGN_ANALYSIS_CFG_VIEW_H
#define BALIGN_ANALYSIS_CFG_VIEW_H

#include <vector>

#include "cfg/procedure.h"

namespace balign {

/// Deduplicated intra-procedure adjacency (see file comment).
class CfgView
{
  public:
    explicit CfgView(const Procedure &proc);

    std::size_t numBlocks() const { return succs_.size(); }
    BlockId entry() const { return entry_; }

    /// Distinct successor block ids of @p id, in first-seen edge order.
    const std::vector<BlockId> &succs(BlockId id) const
    {
        return succs_[id];
    }

    /// Distinct predecessor block ids of @p id, in first-seen edge order.
    const std::vector<BlockId> &preds(BlockId id) const
    {
        return preds_[id];
    }

  private:
    BlockId entry_;
    std::vector<std::vector<BlockId>> succs_;
    std::vector<std::vector<BlockId>> preds_;
};

}  // namespace balign

#endif  // BALIGN_ANALYSIS_CFG_VIEW_H
