#include "analysis/loops.h"

#include <algorithm>
#include <map>

namespace balign {

bool
NaturalLoop::contains(BlockId id) const
{
    return std::binary_search(blocks.begin(), blocks.end(), id);
}

LoopForest
computeLoops(const CfgView &view, const DominatorTree &doms)
{
    LoopForest forest;
    forest.innermost.assign(view.numBlocks(), kNoLoop);
    const RpoOrder &rpo = doms.rpo;

    // Classify every reachable edge once: back edges seed loops,
    // retreating non-back edges witness irreducibility.
    std::map<BlockId, std::vector<BlockId>> latches_of;  // header -> latches
    for (const BlockId src : rpo.order) {
        for (const BlockId dst : view.succs(src)) {
            if (!rpo.reachable(dst))
                continue;
            const bool retreating = rpo.indexOf[dst] <= rpo.indexOf[src];
            if (!retreating)
                continue;
            if (doms.dominates(dst, src))
                latches_of[dst].push_back(src);
            else
                forest.irreducibleEdges.emplace_back(src, dst);
        }
    }

    // Build each loop body: backward reachability from the latches,
    // stopping at the header.
    std::vector<std::pair<std::uint32_t, BlockId>> headers;
    headers.reserve(latches_of.size());
    for (const auto &[header, latches] : latches_of)
        headers.emplace_back(rpo.indexOf[header], header);
    std::sort(headers.begin(), headers.end());

    for (const auto &[rpo_index, header] : headers) {
        (void)rpo_index;
        NaturalLoop loop;
        loop.header = header;
        loop.latches = latches_of[header];

        std::vector<bool> in_loop(view.numBlocks(), false);
        in_loop[header] = true;
        std::vector<BlockId> work;
        for (const BlockId latch : loop.latches) {
            if (!in_loop[latch]) {
                in_loop[latch] = true;
                work.push_back(latch);
            }
        }
        while (!work.empty()) {
            const BlockId id = work.back();
            work.pop_back();
            for (const BlockId pred : view.preds(id)) {
                if (rpo.reachable(pred) && !in_loop[pred]) {
                    in_loop[pred] = true;
                    work.push_back(pred);
                }
            }
        }
        for (BlockId id = 0; id < view.numBlocks(); ++id) {
            if (in_loop[id])
                loop.blocks.push_back(id);
        }
        forest.loops.push_back(std::move(loop));
    }

    // Nesting: headers are in RPO order, so an enclosing loop always
    // precedes the loops it contains. The innermost enclosing loop of a
    // header is the last earlier loop containing it; depths chain from
    // there, and per-block innermost assignment lets later (inner) loops
    // overwrite earlier (outer) ones.
    for (std::size_t i = 0; i < forest.loops.size(); ++i) {
        NaturalLoop &loop = forest.loops[i];
        for (std::size_t j = i; j-- > 0;) {
            if (forest.loops[j].contains(loop.header)) {
                loop.parent = j;
                loop.depth = forest.loops[j].depth + 1;
                break;
            }
        }
        for (const BlockId id : loop.blocks)
            forest.innermost[id] = i;
    }
    return forest;
}

}  // namespace balign
