#include "analysis/dominators.h"

namespace balign {

bool
DominatorTree::dominates(BlockId a, BlockId b) const
{
    if (a >= idom.size() || b >= idom.size())
        return false;
    if (idom[a] == kNoBlock || idom[b] == kNoBlock)
        return false;  // unreachable blocks dominate nothing
    // Walk b's dominator chain up to the entry. The chain is acyclic and
    // strictly decreases in RPO number, so this terminates.
    BlockId walk = b;
    while (true) {
        if (walk == a)
            return true;
        const BlockId up = idom[walk];
        if (up == walk)
            return false;  // reached the entry without meeting a
        walk = up;
    }
}

DominatorTree
computeDominators(const CfgView &view)
{
    DominatorTree tree;
    tree.rpo = reversePostorder(view);
    tree.idom.assign(view.numBlocks(), kNoBlock);
    if (tree.rpo.order.empty())
        return tree;

    const BlockId entry = tree.rpo.order.front();
    tree.idom[entry] = entry;

    // Intersection walks both fingers up to the common ancestor, comparing
    // RPO numbers (lower number = closer to the entry).
    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (tree.rpo.indexOf[a] > tree.rpo.indexOf[b])
                a = tree.idom[a];
            while (tree.rpo.indexOf[b] > tree.rpo.indexOf[a])
                b = tree.idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (const BlockId id : tree.rpo.order) {
            if (id == entry)
                continue;
            // First processed predecessor seeds the intersection; only
            // predecessors that already have an idom participate.
            BlockId new_idom = kNoBlock;
            for (const BlockId pred : view.preds(id)) {
                if (!tree.rpo.reachable(pred) ||
                    tree.idom[pred] == kNoBlock)
                    continue;
                new_idom = new_idom == kNoBlock ? pred
                                                : intersect(pred, new_idom);
            }
            if (new_idom != kNoBlock && tree.idom[id] != new_idom) {
                tree.idom[id] = new_idom;
                changed = true;
            }
        }
    }
    return tree;
}

}  // namespace balign
