#include "analysis/rpo.h"

#include <algorithm>

namespace balign {

RpoOrder
reversePostorder(const CfgView &view)
{
    const std::size_t n = view.numBlocks();
    RpoOrder rpo;
    rpo.indexOf.assign(n, kNoRpoIndex);
    if (view.entry() == kNoBlock || n == 0)
        return rpo;

    // Iterative DFS with an explicit (block, next-successor) stack so deep
    // CFGs cannot overflow the call stack. Postorder is emitted when a
    // block's successor list is exhausted.
    enum : std::uint8_t { White, Grey, Black };
    std::vector<std::uint8_t> color(n, White);
    std::vector<std::pair<BlockId, std::size_t>> stack;
    std::vector<BlockId> postorder;
    postorder.reserve(n);

    stack.emplace_back(view.entry(), 0);
    color[view.entry()] = Grey;
    while (!stack.empty()) {
        auto &[id, next] = stack.back();
        const auto &succs = view.succs(id);
        if (next < succs.size()) {
            const BlockId dst = succs[next++];
            if (color[dst] == White) {
                color[dst] = Grey;
                stack.emplace_back(dst, 0);
            }
        } else {
            color[id] = Black;
            postorder.push_back(id);
            stack.pop_back();
        }
    }

    rpo.order.assign(postorder.rbegin(), postorder.rend());
    for (std::uint32_t i = 0; i < rpo.order.size(); ++i)
        rpo.indexOf[rpo.order[i]] = i;
    return rpo;
}

std::vector<bool>
reachableBlocks(const CfgView &view)
{
    const RpoOrder rpo = reversePostorder(view);
    std::vector<bool> reachable(view.numBlocks(), false);
    for (const BlockId id : rpo.order)
        reachable[id] = true;
    return reachable;
}

}  // namespace balign
