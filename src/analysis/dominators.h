/**
 * @file
 * Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm
 * ("A Simple, Fast Dominance Algorithm", 2001).
 *
 * Block d dominates block b when every path from the entry to b passes
 * through d. The algorithm iterates an intersection step over the blocks
 * in reverse postorder until the immediate-dominator assignment reaches a
 * fixed point — on reducible CFGs that is two passes, and even on
 * irreducible ones it converges quickly while staying a few dozen lines
 * of code. The tree feeds the natural-loop finder (a back edge is an edge
 * whose destination dominates its source) and any future dominance-based
 * rule.
 *
 * Unreachable blocks have no dominator (kNoBlock) and dominates() is
 * false for them in either position.
 */

#ifndef BALIGN_ANALYSIS_DOMINATORS_H
#define BALIGN_ANALYSIS_DOMINATORS_H

#include <vector>

#include "analysis/rpo.h"

namespace balign {

/// Immediate-dominator tree of the reachable blocks.
struct DominatorTree
{
    /// Immediate dominator of each block; the entry is its own idom and
    /// unreachable blocks hold kNoBlock.
    std::vector<BlockId> idom;
    /// RPO numbering the tree was computed over (kept for clients that
    /// need the same ordering, e.g. the loop finder's retreating-edge
    /// test).
    RpoOrder rpo;

    /// True when @p a dominates @p b (reflexive: every block dominates
    /// itself). False when either block is unreachable.
    bool dominates(BlockId a, BlockId b) const;
};

/// Computes the dominator tree of @p view.
DominatorTree computeDominators(const CfgView &view);

}  // namespace balign

#endif  // BALIGN_ANALYSIS_DOMINATORS_H
