#include "analysis/cfg_view.h"

#include <algorithm>

namespace balign {

CfgView::CfgView(const Procedure &proc)
    : entry_(proc.entry()),
      succs_(proc.numBlocks()),
      preds_(proc.numBlocks())
{
    const std::size_t n = proc.numBlocks();
    for (std::uint32_t i = 0; i < proc.numEdges(); ++i) {
        const Edge &edge = proc.edge(i);
        if (edge.src >= n || edge.dst >= n)
            continue;  // cfg.edge-targets reports it; stay total
        auto &out = succs_[edge.src];
        if (std::find(out.begin(), out.end(), edge.dst) == out.end()) {
            out.push_back(edge.dst);
            preds_[edge.dst].push_back(edge.src);
        }
    }
    if (entry_ >= n)
        entry_ = kNoBlock;
}

}  // namespace balign
