/**
 * @file
 * ProcAnalysis: the per-procedure analysis bundle.
 *
 * One call builds everything the dataflow-powered clients need — the
 * deduplicated adjacency view, reverse postorder, dominator tree and
 * natural-loop forest — in dependency order, computing each layer once.
 * The bundle owns all of it, so a client holding a ProcAnalysis can drop
 * the Procedure (or mutate it: the analysis is a snapshot).
 *
 * Construction never panics on malformed CFGs: out-of-range edges are
 * skipped (CfgView), unreachable blocks are excluded from the orderings,
 * and irreducible regions are reported instead of mis-modelled. That is
 * what lets the lint rules run the analyses on arbitrary input before
 * validation has passed.
 */

#ifndef BALIGN_ANALYSIS_ANALYSIS_H
#define BALIGN_ANALYSIS_ANALYSIS_H

#include "analysis/cfg_view.h"
#include "analysis/dominators.h"
#include "analysis/loops.h"
#include "analysis/rpo.h"

namespace balign {

/// Everything src/analysis/ computes for one procedure.
struct ProcAnalysis
{
    CfgView view;
    DominatorTree doms;
    LoopForest loops;

    /// RPO shared by the dominator and loop computations.
    const RpoOrder &rpo() const { return doms.rpo; }

    /// Builds the full bundle for @p proc.
    static ProcAnalysis of(const Procedure &proc);
};

}  // namespace balign

#endif  // BALIGN_ANALYSIS_ANALYSIS_H
