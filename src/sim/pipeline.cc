#include "sim/pipeline.h"

#include <cmath>

#include "bpred/static_pred.h"

namespace balign {

Alpha21064Model::Alpha21064Model(const Program &program,
                                 const ProgramLayout &layout,
                                 const PipelineParams &params)
    : params_(params),
      adapter_(program, layout, *this),
      icache_(params.icacheBytes, params.icacheLineBytes),
      ras_(params.rasEntries),
      slots_(params.icacheBytes / kInstrBytes, SlotState::Cold),
      slotMask_(params.icacheBytes / kInstrBytes - 1)
{
}

void
Alpha21064Model::onInstrs(std::uint64_t count)
{
    instrs_ += count;
}

void
Alpha21064Model::onFetchRange(Addr addr, std::uint32_t count)
{
    if (count == 0)
        return;
    const std::size_t per_line = icache_.instrsPerLine();
    const Addr first = addr / per_line;
    const Addr last = (addr + count - 1) / per_line;
    for (Addr line = first; line <= last; ++line) {
        const Addr line_base = line * per_line;
        if (icache_.access(line_base))
            continue;
        // Line fill: the per-instruction history bits reinitialize.
        for (std::size_t i = 0; i < per_line; ++i)
            slots_[slotIndex(line_base + i)] = SlotState::Cold;
    }
}

void
Alpha21064Model::onBranch(const BranchEvent &event)
{
    switch (event.type) {
      case BranchEvent::Type::Cond: {
        ++condExec_;
        SlotState &slot = slots_[slotIndex(event.site)];
        bool predicted_taken;
        switch (slot) {
          case SlotState::Cold:
            // Fresh line: static prediction from the displacement sign.
            predicted_taken = btFntPredictsTaken(event.site, event.target);
            break;
          case SlotState::Taken:
            predicted_taken = true;
            break;
          case SlotState::NotTaken:
          default:
            predicted_taken = false;
            break;
        }
        slot = event.taken ? SlotState::Taken : SlotState::NotTaken;
        if (predicted_taken != event.taken) {
            ++mispredicts_;
            ++condMispredicts_;
        } else if (event.taken) {
            ++misfetches_;
        }
        break;
      }
      case BranchEvent::Type::Uncond:
        ++misfetches_;
        break;
      case BranchEvent::Type::Call:
        ras_.push(event.site + 1);
        ++misfetches_;
        break;
      case BranchEvent::Type::Indirect:
        ++mispredicts_;
        break;
      case BranchEvent::Type::Return: {
        const Addr predicted = ras_.pop();
        if (event.target == kNoAddr)
            break;  // program exit
        if (predicted == event.target)
            ++misfetches_;
        else
            ++mispredicts_;
        break;
      }
    }
}

double
Alpha21064Model::cycles() const
{
    const double issue = std::ceil(static_cast<double>(instrs_) /
                                   static_cast<double>(params_.issueWidth));
    return issue +
           static_cast<double>(mispredicts_) * params_.mispredictPenalty +
           static_cast<double>(misfetches_) * params_.misfetchPenalty *
               (1.0 - params_.misfetchSquashFraction) +
           static_cast<double>(icache_.misses()) * params_.icacheMissPenalty;
}

}  // namespace balign
