#include "sim/cpi.h"

#include <map>
#include <memory>

#include "emit/relax.h"
#include "layout/materialize.h"
#include "sim/batch_replay.h"
#include "support/log.h"
#include "trace/profiler.h"
#include "workload/generator.h"

namespace balign {

void
ExperimentRun::buildCellIndex()
{
    cellIndex.clear();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        cellIndex.emplace(
            std::make_pair(cells[i].config.arch, cells[i].config.kind), i);
    }
}

const ExperimentCell &
ExperimentRun::cell(Arch arch, AlignerKind kind) const
{
    if (!cellIndex.empty()) {
        const auto found = cellIndex.find(std::make_pair(arch, kind));
        if (found != cellIndex.end())
            return cells[found->second];
    } else {
        // Hand-assembled runs (tests) may not have built the index.
        for (const auto &cell : cells) {
            if (cell.config.arch == arch && cell.config.kind == kind)
                return cell;
        }
    }
    fatal("ExperimentRun(%s): no cell for %s/%s", name.c_str(),
          archName(arch), alignerKindName(kind));
}

PreparedProgram
prepareProgram(Program program, const WalkOptions &walk,
               const std::string &name)
{
    PreparedProgram prepared;
    prepared.program = std::move(program);
    prepared.walk = walk;
    if (!name.empty())
        prepared.program.setName(name);

    // One walk both profiles the program and records the event stream;
    // every evaluation replays the recording instead of walking again.
    prepared.program.clearWeights();
    Profiler profiler(prepared.program);
    TraceRecorder recorder(prepared.program);
    MultiSink fanout;
    fanout.add(&profiler);
    fanout.add(&recorder);
    recorder.setWalkResult(balign::walk(prepared.program, walk, fanout));
    prepared.stats = profiler.stats();
    prepared.trace =
        std::make_shared<const RecordedTrace>(recorder.take());
    // Canonical batched form: one extra pass now, paid back every time
    // runConfigs sweeps a layout group (sim/batch_replay.h).
    prepared.batch = std::make_shared<const BatchTrace>(prepared.program,
                                                        *prepared.trace);
    return prepared;
}

PreparedProgram
prepareProgram(const ProgramSpec &spec)
{
    WalkOptions walk;
    walk.seed = traceSeed(spec);
    walk.instrBudget = spec.traceInstrs;
    return prepareProgram(generateProgram(spec), walk, spec.name);
}

namespace {

/// Feeds the prepared program's event stream to one sink: a tight replay
/// of the recorded trace, or (hand-built PreparedProgram) a fresh walk.
void
feedTrace(const PreparedProgram &prepared, EventSink &sink)
{
    if (prepared.trace != nullptr)
        prepared.trace->replay(prepared.program, sink);
    else
        walk(prepared.program, prepared.walk, sink);
}

/**
 * Rewrites every address field of @p layout to its relaxed byte address
 * under @p model: block starts, terminator-branch slots and inserted-jump
 * slots. Instruction-count fields are untouched, so replay accounting
 * (instrs, per-block activation mapping) is unchanged — only the
 * addresses that address-indexed predictors consume move. The clone is
 * never verified or linted (those prove the word model; the byte
 * rendition has its own obligations in verify/verify.h).
 */
void
translateLayoutAddresses(const Program &program, ProgramLayout &layout,
                         const EncodingModel &model)
{
    const RelaxedLayout relaxed = relaxLayout(program, layout, model);
    for (ProcId p = 0; p < layout.procs.size(); ++p) {
        ProcLayout &proc = layout.procs[p];
        const RelaxedProc &rp = relaxed.procs[p];
        proc.base = static_cast<Addr>(rp.byteBase);
        for (const BlockId id : proc.order) {
            BlockLayout &bl = proc.blocks[id];
            const RelaxedBlock &rb = rp.blocks[id];
            // Match the word addresses against the block's slots BEFORE
            // overwriting them.
            Addr branch_addr = kNoAddr;
            Addr jump_addr = kNoAddr;
            for (std::uint32_t s = 0; s < rb.numInstrs; ++s) {
                const RelaxedInstr &instr =
                    relaxed.instrs[rb.firstInstr + s];
                if (bl.branchAddr != kNoAddr &&
                    instr.wordAddr == bl.branchAddr)
                    branch_addr = static_cast<Addr>(instr.byteAddr);
                if (bl.jumpAddr != kNoAddr &&
                    instr.wordAddr == bl.jumpAddr)
                    jump_addr = static_cast<Addr>(instr.byteAddr);
            }
            bl.addr = static_cast<Addr>(rb.byteAddr);
            bl.branchAddr = branch_addr;
            bl.jumpAddr = jump_addr;
        }
    }
}

}  // namespace

ExperimentRun
runConfigs(const PreparedProgram &prepared,
           const std::vector<ExperimentConfig> &configs,
           const AlignOptions &options, const RunContext &context)
{
    const Program &program = prepared.program;

    ExperimentRun run;
    run.name = program.name();
    run.stats = prepared.stats;

    // Build the layouts. Original and Greedy are architecture-independent;
    // Cost and TryN depend on the architecture's cost model.
    struct LayoutKey
    {
        AlignerKind kind;
        ObjectiveKind objective;
        Arch arch;  ///< only meaningful for arch-dependent layouts
        DegradeSpec degrade;
        ProfileSource source;
        EncodingModelKind encoding;

        bool
        operator<(const LayoutKey &other) const
        {
            if (kind != other.kind)
                return kind < other.kind;
            if (objective != other.objective)
                return objective < other.objective;
            if (arch != other.arch)
                return arch < other.arch;
            if (source != other.source)
                return source < other.source;
            if (encoding != other.encoding)
                return encoding < other.encoding;
            return degrade < other.degrade;
        }
    };
    auto layout_key = [](const ExperimentConfig &config) {
        // Objective-guided aligners depend on the architecture only when
        // the objective prices through the architecture's cost model
        // (Table-1; ExtTSP layouts are shared across architectures). In
        // addition, the BT/FNT architecture uses the Pettis-Hansen BT/FNT
        // precedence chain ordering (paper SS6.1), making every BT/FNT
        // layout architecture-specific.
        const bool guided = config.kind == AlignerKind::Cost ||
                            config.kind == AlignerKind::Try15 ||
                            config.kind == AlignerKind::ExtTsp;
        const bool arch_dependent =
            (guided && objectiveArchDependent(config.objective)) ||
            config.arch == Arch::BtFnt;
        // The identity layout never reads the profile, so neither
        // degradation nor the profile source can change it; collapsing
        // its key avoids duplicate layouts. An estimated profile
        // replaces the weights wholesale, so degradation is moot there
        // too.
        const ProfileSource source = config.kind == AlignerKind::Original
                                         ? ProfileSource::Measured
                                         : config.source;
        const DegradeSpec degrade =
            config.kind == AlignerKind::Original ||
                    source == ProfileSource::Estimated
                ? DegradeSpec::none()
                : config.degrade;
        return LayoutKey{config.kind, config.objective,
                         arch_dependent ? config.arch : Arch::Fallthrough,
                         degrade, source, config.encoding};
    };

    // Deduplicate the layout keys first so each distinct layout is aligned
    // exactly once; the alignments themselves are independent of each
    // other, so they are scheduled across the pool when one is available.
    std::vector<LayoutKey> keys;
    std::vector<ExperimentConfig> key_configs;
    std::map<LayoutKey, std::size_t> key_index;
    for (const auto &config : configs) {
        const LayoutKey key = layout_key(config);
        if (key_index.emplace(key, keys.size()).second) {
            keys.push_back(key);
            key_configs.push_back(config);
        }
    }

    std::vector<std::unique_ptr<ProgramLayout>> layouts(keys.size());
    std::vector<std::unique_ptr<CostModel>> models(keys.size());
    auto align_one = [&](std::size_t i) {
        const ExperimentConfig &config = key_configs[i];
        auto model = std::make_unique<CostModel>(config.arch);
        AlignOptions arch_options = options;
        arch_options.objective = config.objective;
        if (config.arch == Arch::BtFnt)
            arch_options.chainOrder = ChainOrderPolicy::BtFntPrecedence;
        if (config.kind != AlignerKind::Original &&
            config.source == ProfileSource::Estimated) {
            // Profile-free layout: alignProgram estimates internally.
            arch_options.profileSource = ProfileSource::Estimated;
            layouts[i] = std::make_unique<ProgramLayout>(alignProgram(
                program, config.kind, model.get(), arch_options));
        } else if (config.kind != AlignerKind::Original &&
                   !config.degrade.isNone()) {
            // Align on the degraded profile; evaluation below still
            // replays the true recorded trace (degradations only touch
            // edge weights, so the layout maps onto the same CFG).
            Program degraded = program;
            degradeProfile(degraded, prepared.walk, config.degrade);
            layouts[i] = std::make_unique<ProgramLayout>(alignProgram(
                degraded, config.kind, model.get(), arch_options));
        } else {
            layouts[i] = std::make_unique<ProgramLayout>(alignProgram(
                program, config.kind, model.get(), arch_options));
        }
        // Non-default encoding: replay the relaxed byte placement. The
        // fixed-word default leaves the word-model layout untouched —
        // the exact historical pipeline.
        if (config.encoding != EncodingModelKind::FixedWord)
            translateLayoutAddresses(program, *layouts[i],
                                     encodingModel(config.encoding));
        models[i] = std::move(model);
    };
    {
        ScopedPhaseTimer timer(context.times, "align");
        if (context.pool != nullptr)
            context.pool->parallelFor(keys.size(), align_one);
        else
            for (std::size_t i = 0; i < keys.size(); ++i)
                align_one(i);
    }

    // Evaluate every configuration. Batched engine: the cells sharing a
    // layout are lanes of ONE sweep, and the pool parallelizes across
    // layout groups. Per-cell reference engine: one ArchEvaluator fed by
    // its own independent replay per cell.
    const bool batched = context.engine == ReplayEngine::Batched &&
                         prepared.batch != nullptr;
    std::vector<EvalResult> results(configs.size());
    {
        ScopedPhaseTimer timer(context.times, "replay");
        if (batched) {
            std::vector<std::vector<std::size_t>> members(keys.size());
            for (std::size_t i = 0; i < configs.size(); ++i)
                members[key_index.at(layout_key(configs[i]))].push_back(i);
            auto replay_group = [&](std::size_t k) {
                std::vector<EvalParams> lanes;
                lanes.reserve(members[k].size());
                for (const std::size_t i : members[k])
                    lanes.push_back(EvalParams::forArch(configs[i].arch));
                const std::vector<EvalResult> lane_results =
                    runBatchReplay(program, *layouts[k], *prepared.batch,
                                   lanes);
                for (std::size_t j = 0; j < members[k].size(); ++j)
                    results[members[k][j]] = lane_results[j];
            };
            if (context.pool != nullptr)
                context.pool->parallelFor(keys.size(), replay_group);
            else
                for (std::size_t k = 0; k < keys.size(); ++k)
                    replay_group(k);
        } else {
            auto replay_one = [&](std::size_t i) {
                const ProgramLayout &layout =
                    *layouts[key_index.at(layout_key(configs[i]))];
                ArchEvaluator evaluator(
                    program, layout, EvalParams::forArch(configs[i].arch));
                feedTrace(prepared, evaluator.sink());
                results[i] = evaluator.result();
            };
            if (context.pool != nullptr)
                context.pool->parallelFor(configs.size(), replay_one);
            else
                for (std::size_t i = 0; i < configs.size(); ++i)
                    replay_one(i);
        }
    }

    // The original-layout instruction count anchors every relative CPI.
    std::uint64_t orig_instrs = 0;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (configs[i].kind == AlignerKind::Original) {
            orig_instrs = results[i].instrs;
            break;
        }
    }
    if (orig_instrs == 0) {
        // No Original configuration requested: the count is architecture
        // independent, so layout-level accounting over the recorded
        // activation histogram recovers it without replaying the trace.
        ScopedPhaseTimer timer(context.times, "replay");
        const ProgramLayout orig = originalLayout(program);
        if (prepared.batch != nullptr) {
            orig_instrs = batchLayoutInstrs(*prepared.batch, orig);
        } else {
            ArchEvaluator eval(program, orig,
                               EvalParams::forArch(Arch::BtFnt));
            feedTrace(prepared, eval.sink());
            orig_instrs = eval.result().instrs;
        }
    }
    run.origInstrs = orig_instrs;

    run.cells.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        ExperimentCell cell;
        cell.config = configs[i];
        cell.eval = results[i];
        cell.relCpi = cell.eval.relativeCpi(orig_instrs);
        run.cells.push_back(cell);
    }
    run.buildCellIndex();
    return run;
}

ExperimentRun
runExperiment(const ProgramSpec &spec,
              const std::vector<ExperimentConfig> &configs,
              const AlignOptions &options)
{
    ExperimentRun run = runConfigs(prepareProgram(spec), configs, options);
    run.group = spec.group;
    return run;
}

}  // namespace balign
