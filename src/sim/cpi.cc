#include "sim/cpi.h"

#include <map>
#include <memory>

#include "layout/materialize.h"
#include "support/log.h"
#include "trace/profiler.h"
#include "workload/generator.h"

namespace balign {

const ExperimentCell &
ExperimentRun::cell(Arch arch, AlignerKind kind) const
{
    for (const auto &cell : cells) {
        if (cell.config.arch == arch && cell.config.kind == kind)
            return cell;
    }
    fatal("ExperimentRun(%s): no cell for %s/%s", name.c_str(),
          archName(arch), alignerKindName(kind));
}

PreparedProgram
prepareProgram(Program program, const WalkOptions &walk,
               const std::string &name)
{
    PreparedProgram prepared;
    prepared.program = std::move(program);
    prepared.walk = walk;
    if (!name.empty())
        prepared.program.setName(name);

    prepared.program.clearWeights();
    Profiler profiler(prepared.program);
    balign::walk(prepared.program, walk, profiler);
    prepared.stats = profiler.stats();
    return prepared;
}

PreparedProgram
prepareProgram(const ProgramSpec &spec)
{
    WalkOptions walk;
    walk.seed = traceSeed(spec);
    walk.instrBudget = spec.traceInstrs;
    return prepareProgram(generateProgram(spec), walk, spec.name);
}

ExperimentRun
runConfigs(const PreparedProgram &prepared,
           const std::vector<ExperimentConfig> &configs,
           const AlignOptions &options)
{
    const Program &program = prepared.program;

    ExperimentRun run;
    run.name = program.name();
    run.stats = prepared.stats;

    // Build the layouts. Original and Greedy are architecture-independent;
    // Cost and TryN depend on the architecture's cost model.
    struct LayoutKey
    {
        AlignerKind kind;
        Arch arch;  ///< only meaningful for cost-aware aligners

        bool
        operator<(const LayoutKey &other) const
        {
            if (kind != other.kind)
                return kind < other.kind;
            return arch < other.arch;
        }
    };
    auto layout_key = [](const ExperimentConfig &config) {
        // Cost-aware aligners depend on the architecture's cost model; in
        // addition, the BT/FNT architecture uses the Pettis-Hansen BT/FNT
        // precedence chain ordering (paper SS6.1), making every BT/FNT
        // layout architecture-specific.
        const bool arch_dependent = config.kind == AlignerKind::Cost ||
                                    config.kind == AlignerKind::Try15 ||
                                    config.arch == Arch::BtFnt;
        return LayoutKey{config.kind,
                         arch_dependent ? config.arch : Arch::Fallthrough};
    };

    std::map<LayoutKey, std::unique_ptr<ProgramLayout>> layouts;
    std::map<LayoutKey, std::unique_ptr<CostModel>> models;
    for (const auto &config : configs) {
        const LayoutKey key = layout_key(config);
        if (layouts.count(key))
            continue;
        auto model = std::make_unique<CostModel>(config.arch);
        AlignOptions arch_options = options;
        if (config.arch == Arch::BtFnt)
            arch_options.chainOrder = ChainOrderPolicy::BtFntPrecedence;
        layouts[key] = std::make_unique<ProgramLayout>(alignProgram(
            program, config.kind, model.get(), arch_options));
        models[key] = std::move(model);
    }

    // One evaluator per configuration, all fed by a single replay walk.
    std::vector<std::unique_ptr<ArchEvaluator>> evaluators;
    MultiSink fanout;
    for (const auto &config : configs) {
        const ProgramLayout &layout = *layouts.at(layout_key(config));
        evaluators.push_back(std::make_unique<ArchEvaluator>(
            program, layout, EvalParams::forArch(config.arch)));
        fanout.add(&evaluators.back()->sink());
    }
    walk(program, prepared.walk, fanout);

    // The original-layout instruction count anchors every relative CPI.
    std::uint64_t orig_instrs = 0;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (configs[i].kind == AlignerKind::Original) {
            orig_instrs = evaluators[i]->result().instrs;
            break;
        }
    }
    if (orig_instrs == 0) {
        // No Original configuration requested: evaluate one on the fly.
        const ProgramLayout orig = originalLayout(program);
        ArchEvaluator eval(program, orig,
                           EvalParams::forArch(Arch::BtFnt));
        walk(program, prepared.walk, eval.sink());
        orig_instrs = eval.result().instrs;
    }
    run.origInstrs = orig_instrs;

    run.cells.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        ExperimentCell cell;
        cell.config = configs[i];
        cell.eval = evaluators[i]->result();
        cell.relCpi = cell.eval.relativeCpi(orig_instrs);
        run.cells.push_back(cell);
    }
    return run;
}

ExperimentRun
runExperiment(const ProgramSpec &spec,
              const std::vector<ExperimentConfig> &configs,
              const AlignOptions &options)
{
    ExperimentRun run = runConfigs(prepareProgram(spec), configs, options);
    run.group = spec.group;
    return run;
}

}  // namespace balign
