/**
 * @file
 * Experiment driver: generate (or accept) a program, profile it with one
 * seeded walk, align it for a set of (architecture, algorithm) pairs, and
 * evaluate every configuration against the identical event stream — the
 * paper's methodology ("for each architecture, we use the same input to
 * align the program and to measure the improvement").
 *
 * The profiling walk is captured once into a RecordedTrace
 * (trace/recorder.h) and canonicalized into a BatchTrace
 * (sim/batch_replay.h). By default every distinct layout is then
 * evaluated in ONE batched sweep that drives all of its configurations'
 * predictors simultaneously; the per-cell ArchEvaluator replay remains
 * selectable as the reference engine (RunContext::engine) and the two are
 * pinned byte-identical by the `ctest -L replay` suite. Layout groups are
 * independent, so runConfigs schedules them across a ThreadPool when one
 * is supplied (see sim/runner.h for the suite-level parallel driver).
 * Results are bit-identical regardless of thread count or engine.
 *
 * Layouts are shared where the paper shares them: Original and Greedy are
 * architecture-independent; Cost and TryN are re-run per architecture with
 * that architecture's cost model. Under an architecture-independent
 * objective (ExtTSP) even the objective-guided aligners share one layout
 * across architectures — objectiveArchDependent() decides.
 */

#ifndef BALIGN_SIM_CPI_H
#define BALIGN_SIM_CPI_H

#include <map>
#include <memory>
#include <vector>

#include "bpred/evaluator.h"
#include "cfg/cfg_stats.h"
#include "cfg/program.h"
#include "core/align_program.h"
#include "emit/encoding.h"
#include "profile/degrade.h"
#include "support/stats.h"
#include "support/thread_pool.h"
#include "trace/recorder.h"
#include "trace/walker.h"
#include "workload/spec.h"

namespace balign {

struct BatchTrace;

/// A (prediction architecture, alignment algorithm, alignment objective)
/// triple to evaluate, plus an optional profile-degradation axis. The
/// objective defaults to the paper's Table-1 cost and the degradation to
/// None, so two-field aggregate initialization keeps its old meaning.
struct ExperimentConfig
{
    Arch arch;
    AlignerKind kind;
    ObjectiveKind objective = ObjectiveKind::TableCost;

    /// When not None, the layout for this cell is computed from a
    /// degraded copy of the profile (profile/degrade.h) while evaluation
    /// still replays the true recorded trace — the align-on-degraded /
    /// measure-on-true scenario (ROADMAP item 3).
    DegradeSpec degrade = DegradeSpec::none();

    /// Profile source for this cell's layout: Measured consumes the
    /// prepared profile (optionally degraded per `degrade`); Estimated
    /// aligns on the static estimate (estimate/estimate.h) and ignores
    /// `degrade` — the profile-free endpoint of the robustness axis.
    /// Evaluation always replays the true recorded trace.
    ProfileSource source = ProfileSource::Measured;

    /// Encoding model the evaluated addresses come from. FixedWord (the
    /// default) replays the word-model addresses directly — the paper's
    /// fixed 4-byte-instruction machine, byte-identical to the historical
    /// pipeline. Any other model relaxes each distinct layout
    /// (emit/relax.h) and replays a clone whose block/branch/jump
    /// addresses are the final relaxed byte addresses, so
    /// address-indexed predictors (BTBs) see the variable-length
    /// placement. Instruction counters are unaffected — only addresses
    /// change.
    EncodingModelKind encoding = EncodingModelKind::FixedWord;
};

/// One evaluated configuration.
struct ExperimentCell
{
    ExperimentConfig config;
    EvalResult eval;
    double relCpi = 0.0;  ///< relative CPI vs the original layout
};

/// All results for one program.
struct ExperimentRun
{
    std::string name;
    std::string group;
    ProgramStats stats;             ///< Table-2 attributes from the profile
    std::uint64_t origInstrs = 0;   ///< instructions under the original layout
    std::vector<ExperimentCell> cells;

    /// (arch, kind) -> index of the first matching cell. Built once by
    /// runConfigs so cell() is a map lookup instead of a linear scan
    /// (benches call it in loops); rebuild with buildCellIndex() after
    /// mutating `cells` by hand.
    std::map<std::pair<Arch, AlignerKind>, std::size_t> cellIndex;

    /// Rebuilds cellIndex from `cells` (first match wins, like the scan).
    void buildCellIndex();

    /// Finds a cell; fatal() when the configuration was not evaluated.
    const ExperimentCell &cell(Arch arch, AlignerKind kind) const;
};

/**
 * A profiled program ready for evaluation: the CFG with measured edge
 * weights, the walk configuration that produced the trace, and the
 * recorded event stream itself (captured during the profiling walk).
 */
struct PreparedProgram
{
    Program program;
    WalkOptions walk;
    ProgramStats stats;
    /// The profiling walk's event stream; evaluation replays this buffer.
    /// When null (hand-built PreparedProgram), runConfigs re-walks instead.
    std::shared_ptr<const RecordedTrace> trace;
    /// The trace in canonical batched form (sim/batch_replay.h), built
    /// alongside it by prepareProgram. When null, runConfigs falls back
    /// to the per-cell reference path.
    std::shared_ptr<const BatchTrace> batch;
};

/// Generates and profiles the program described by @p spec.
PreparedProgram prepareProgram(const ProgramSpec &spec);

/// Profiles an existing program (weights are cleared first).
PreparedProgram prepareProgram(Program program, const WalkOptions &walk,
                               const std::string &name = "");

/// Which engine evaluates the experiment cells.
enum class ReplayEngine : std::uint8_t
{
    /// One batched sweep per distinct layout drives all of its cells
    /// (sim/batch_replay.h). The default.
    Batched,
    /// Reference implementation: one ArchEvaluator replay per cell.
    PerCell,
};

/// Optional execution context for runConfigs: a pool to spread alignment
/// and per-configuration replays across, a phase-time sink, and the
/// replay-engine selector.
struct RunContext
{
    ThreadPool *pool = nullptr;   ///< null = run serially
    PhaseTimes *times = nullptr;  ///< accumulates "align" / "replay" seconds
    /// Engine choice; the batched engine needs prepared.batch and falls
    /// back to PerCell when it is absent.
    ReplayEngine engine = ReplayEngine::Batched;
};

/**
 * Evaluates all configurations against the prepared program's recorded
 * trace (one independent replay per configuration; parallel when the
 * context carries a pool).
 */
ExperimentRun runConfigs(const PreparedProgram &prepared,
                         const std::vector<ExperimentConfig> &configs,
                         const AlignOptions &options = {},
                         const RunContext &context = {});

/// Convenience: prepare + run.
ExperimentRun runExperiment(const ProgramSpec &spec,
                            const std::vector<ExperimentConfig> &configs,
                            const AlignOptions &options = {});

}  // namespace balign

#endif  // BALIGN_SIM_CPI_H
