/**
 * @file
 * Experiment driver: generate (or accept) a program, profile it with one
 * seeded walk, align it for a set of (architecture, algorithm) pairs, and
 * evaluate every configuration against a second, identical walk — the
 * paper's methodology ("for each architecture, we use the same input to
 * align the program and to measure the improvement").
 *
 * Layouts are shared where the paper shares them: Original and Greedy are
 * architecture-independent; Cost and TryN are re-run per architecture with
 * that architecture's cost model.
 */

#ifndef BALIGN_SIM_CPI_H
#define BALIGN_SIM_CPI_H

#include <vector>

#include "bpred/evaluator.h"
#include "cfg/cfg_stats.h"
#include "cfg/program.h"
#include "core/align_program.h"
#include "trace/walker.h"
#include "workload/spec.h"

namespace balign {

/// A (prediction architecture, alignment algorithm) pair to evaluate.
struct ExperimentConfig
{
    Arch arch;
    AlignerKind kind;
};

/// One evaluated configuration.
struct ExperimentCell
{
    ExperimentConfig config;
    EvalResult eval;
    double relCpi = 0.0;  ///< relative CPI vs the original layout
};

/// All results for one program.
struct ExperimentRun
{
    std::string name;
    std::string group;
    ProgramStats stats;             ///< Table-2 attributes from the profile
    std::uint64_t origInstrs = 0;   ///< instructions under the original layout
    std::vector<ExperimentCell> cells;

    /// Finds a cell; fatal() when the configuration was not evaluated.
    const ExperimentCell &cell(Arch arch, AlignerKind kind) const;
};

/**
 * A profiled program ready for evaluation: the CFG with measured edge
 * weights plus the walk configuration that produced (and will reproduce)
 * the trace.
 */
struct PreparedProgram
{
    Program program;
    WalkOptions walk;
    ProgramStats stats;
};

/// Generates and profiles the program described by @p spec.
PreparedProgram prepareProgram(const ProgramSpec &spec);

/// Profiles an existing program (weights are cleared first).
PreparedProgram prepareProgram(Program program, const WalkOptions &walk,
                               const std::string &name = "");

/**
 * Evaluates all configurations with ONE replay walk (fanning the event
 * stream out to every evaluator).
 */
ExperimentRun runConfigs(const PreparedProgram &prepared,
                         const std::vector<ExperimentConfig> &configs,
                         const AlignOptions &options = {});

/// Convenience: prepare + run.
ExperimentRun runExperiment(const ProgramSpec &spec,
                            const std::vector<ExperimentConfig> &configs,
                            const AlignOptions &options = {});

}  // namespace balign

#endif  // BALIGN_SIM_CPI_H
