/**
 * @file
 * Thread-pooled parallel experiment runner.
 *
 * The paper tables and figures all have the same shape: for every program
 * in a suite, generate the model, profile it with one recorded walk, build
 * the layouts, and evaluate every (architecture, algorithm) configuration
 * against the trace — by default one batched sweep per distinct layout
 * drives all of its configurations at once (sim/batch_replay.h). Every one
 * of those steps is independent across programs, and the per-layout-group
 * sweeps (or, under the PerCell reference engine, the per-configuration
 * replays) are independent within a program too. runSuite() schedules all
 * of it across a work-sharing thread pool: program-level tasks fan out
 * first, and each task's alignment and replay stages fan out further into
 * the same pool (nested parallelFor).
 *
 * Determinism: every result is written to a pre-assigned slot and no
 * floating-point reduction crosses threads, so the output is byte-identical
 * to a serial run regardless of thread count or scheduling.
 *
 * Thread count: the BALIGN_THREADS environment variable, defaulting to
 * std::thread::hardware_concurrency(). BALIGN_THREADS=1 reproduces the
 * serial path exactly (no worker threads are spawned at all).
 *
 * Instrumentation: pass a PhaseTimes to accumulate per-phase wall time
 * (generate / profile / align / replay) for machine-readable JSON output;
 * see bench/bench_wallclock.cc and the BENCH_*.json trajectories.
 */

#ifndef BALIGN_SIM_RUNNER_H
#define BALIGN_SIM_RUNNER_H

#include <vector>

#include "sim/cpi.h"
#include "sim/exec_time.h"
#include "support/stats.h"
#include "workload/spec.h"

namespace balign {

/**
 * Threads the runner uses by default: BALIGN_THREADS when set to a
 * positive integer (values > 256 are clamped, garbage is warned about and
 * ignored), otherwise the hardware concurrency (at least 1).
 */
unsigned defaultThreads();

/// Runner configuration.
struct RunnerOptions
{
    AlignOptions align;           ///< passed through to the aligners
    unsigned threads = 0;         ///< 0 = defaultThreads()
    PhaseTimes *times = nullptr;  ///< optional per-phase wall-time sink
    /// Replay engine (sim/cpi.h); the batched default shares one sweep
    /// per layout group, PerCell is the reference path.
    ReplayEngine engine = ReplayEngine::Batched;
};

/**
 * Runs every (program, configuration) cell of the experiment matrix across
 * the pool. Returns one ExperimentRun per spec, in suite order, each
 * identical to what runExperiment(spec, configs, options.align) produces.
 */
std::vector<ExperimentRun>
runSuite(const std::vector<ProgramSpec> &suite,
         const std::vector<ExperimentConfig> &configs,
         const RunnerOptions &options = {});

/**
 * Parallel counterpart of runExecTime (Figure 4): one result per spec, in
 * suite order, identical to the serial calls.
 */
std::vector<ExecTimeResult>
runExecTimeSuite(const std::vector<ProgramSpec> &suite,
                 const PipelineParams &params = {},
                 const RunnerOptions &options = {});

}  // namespace balign

#endif  // BALIGN_SIM_RUNNER_H
