/**
 * @file
 * Figure-4 driver: total execution time on the dual-issue Alpha 21064
 * model for Original, Pettis & Hansen (Greedy) and Try15 layouts.
 *
 * Per paper §6.1, the Greedy alignment is the same one used for all the
 * simulations (hot-first chain ordering), and the Try15 alignment is the
 * one produced with the BTB cost model, which the paper found performed
 * the same or slightly better than the PHT and BT/FNT alignments on the
 * real machine.
 */

#ifndef BALIGN_SIM_EXEC_TIME_H
#define BALIGN_SIM_EXEC_TIME_H

#include "sim/pipeline.h"
#include "support/stats.h"
#include "workload/spec.h"

namespace balign {

/// Relative execution times (original = 1.0).
struct ExecTimeResult
{
    std::string name;
    double originalCycles = 0.0;
    double greedyRelative = 1.0;  ///< greedy cycles / original cycles
    double try15Relative = 1.0;   ///< try15 cycles / original cycles

    /// Detailed per-layout stats for analysis.
    std::uint64_t origMispredicts = 0;
    std::uint64_t greedyMispredicts = 0;
    std::uint64_t try15Mispredicts = 0;
    std::uint64_t origICacheMisses = 0;
    std::uint64_t try15ICacheMisses = 0;
    std::uint64_t origMisfetches = 0;
    std::uint64_t try15Misfetches = 0;
    double origCyclesTotal = 0.0;
    std::uint64_t origInstrs = 0;
};

/// Runs the Figure-4 experiment for one program model. The pipeline models
/// replay the recorded profiling trace (one replay per layout); @p times,
/// when given, accumulates generate/profile/align/replay wall time.
ExecTimeResult runExecTime(const ProgramSpec &spec,
                           const PipelineParams &params = {},
                           PhaseTimes *times = nullptr);

}  // namespace balign

#endif  // BALIGN_SIM_EXEC_TIME_H
