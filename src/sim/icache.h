/**
 * @file
 * Direct-mapped instruction cache model for the Alpha 21064 pipeline
 * simulation (paper §6.1). Alignment affects instruction-cache locality as
 * well as prediction, and the 21064's per-line branch history bits are
 * reinitialized when a line is (re)filled, so the cache model also drives
 * the line predictor's cold-start behaviour.
 */

#ifndef BALIGN_SIM_ICACHE_H
#define BALIGN_SIM_ICACHE_H

#include <vector>

#include "support/types.h"

namespace balign {

class ICache
{
  public:
    /**
     * @param size_bytes total capacity (power of two; 21064: 8 KB)
     * @param line_bytes line size (power of two; 21064: 32 B)
     */
    ICache(std::size_t size_bytes, std::size_t line_bytes);

    /**
     * Accesses the line containing instruction-word address @p addr.
     * @return true on hit; on a miss the line is filled.
     */
    bool access(Addr addr);

    /// Accesses every line overlapping [addr, addr+count) instructions;
    /// returns the number of misses.
    unsigned accessRange(Addr addr, std::uint32_t count);

    /// Line index (within the cache) holding instruction address @p addr.
    std::size_t lineIndex(Addr addr) const;

    /// Instruction words per line.
    std::size_t instrsPerLine() const { return instrsPerLine_; }

    std::size_t numLines() const { return tags_.size(); }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    std::size_t instrsPerLine_;
    std::size_t lineShift_;  ///< log2(instrsPerLine_)
    std::size_t indexMask_;
    std::vector<Addr> tags_;  ///< kNoAddr == invalid
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace balign

#endif  // BALIGN_SIM_ICACHE_H
