#include "sim/runner.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "support/log.h"
#include "support/thread_pool.h"
#include "workload/generator.h"

namespace balign {

unsigned
defaultThreads()
{
    if (const char *env = std::getenv("BALIGN_THREADS")) {
        char *end = nullptr;
        const long value = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && value >= 1)
            return static_cast<unsigned>(std::min<long>(value, 256));
        warn("BALIGN_THREADS='%s' is not a positive integer; using the "
             "hardware default", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

namespace {

/// Generate + profile one spec, with per-phase timing.
PreparedProgram
prepareTimed(const ProgramSpec &spec, PhaseTimes *times)
{
    Program program;
    {
        ScopedPhaseTimer timer(times, "generate");
        program = generateProgram(spec);
    }
    WalkOptions walk;
    walk.seed = traceSeed(spec);
    walk.instrBudget = spec.traceInstrs;
    ScopedPhaseTimer timer(times, "profile");
    return prepareProgram(std::move(program), walk, spec.name);
}

}  // namespace

std::vector<ExperimentRun>
runSuite(const std::vector<ProgramSpec> &suite,
         const std::vector<ExperimentConfig> &configs,
         const RunnerOptions &options)
{
    ThreadPool pool(options.threads != 0 ? options.threads
                                         : defaultThreads());
    const RunContext context{&pool, options.times, options.engine};

    std::vector<ExperimentRun> runs(suite.size());
    pool.parallelFor(suite.size(), [&](std::size_t i) {
        const ProgramSpec &spec = suite[i];
        const PreparedProgram prepared = prepareTimed(spec, options.times);
        ExperimentRun run =
            runConfigs(prepared, configs, options.align, context);
        run.group = spec.group;
        runs[i] = std::move(run);
    });
    return runs;
}

std::vector<ExecTimeResult>
runExecTimeSuite(const std::vector<ProgramSpec> &suite,
                 const PipelineParams &params, const RunnerOptions &options)
{
    ThreadPool pool(options.threads != 0 ? options.threads
                                         : defaultThreads());
    std::vector<ExecTimeResult> results(suite.size());
    pool.parallelFor(suite.size(), [&](std::size_t i) {
        results[i] = runExecTime(suite[i], params, options.times);
    });
    return results;
}

}  // namespace balign
