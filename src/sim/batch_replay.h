/**
 * @file
 * Batched multi-architecture replay engine.
 *
 * The experiment matrix used to replay the recorded trace once per
 * (architecture, aligner, objective) cell: one virtual EventSink call per
 * event per cell, plus a full BranchEventAdapter state machine and
 * Program/ProgramLayout pointer chasing inside every replay. This engine
 * restructures that work so one sweep drives every predictor:
 *
 *  1. BatchTrace — built once per prepared program — canonicalizes the
 *     RecordedTrace into flat branch-op arrays. Block activations
 *     collapse into per-block counts, call-site indices and the
 *     pending-return state machine are resolved once, and every operand
 *     is a dense program-global block index. What remains per layout is
 *     pure integer dispatch: no virtual calls, no CFG lookups.
 *
 *  2. runBatchReplay() evaluates N architecture lanes against ONE layout
 *     in one pass. Per-block layout facts are flattened into
 *     structure-of-arrays tables; the architecture-independent counters
 *     (instruction counts, executed-branch mix, BTB lookup count, and the
 *     complete penalty totals of the three static architectures) are
 *     computed in O(blocks) from activation and edge-traversal counts;
 *     PHT-family lanes scan a dense conditional-branch stream with
 *     branchless saturating-counter updates (support/saturating_counter.h);
 *     only BTB lanes walk the full branch stream, because a BTB observes
 *     every break type in order.
 *
 * Contract: each lane's EvalResult is byte-identical to what an
 * ArchEvaluator fed through BranchEventAdapter by RecordedTrace::replay
 * produces for the same (layout, EvalParams). The per-cell path remains
 * in sim/cpi.cc as the reference implementation; the `ctest -L replay`
 * suite pins equivalence across the whole benchmark suite and the fuzz
 * corpus, and check/differ.cc re-checks it on every differential run so
 * the fuzzer shrinks batched-engine divergences like any other finding.
 */

#ifndef BALIGN_SIM_BATCH_REPLAY_H
#define BALIGN_SIM_BATCH_REPLAY_H

#include <cstdint>
#include <vector>

#include "bpred/evaluator.h"
#include "cfg/program.h"
#include "layout/layout_result.h"
#include "trace/recorder.h"

namespace balign {

/**
 * The canonical, layout-independent form of a recorded walk: flat
 * branch-op arrays plus the activation / edge-traversal histograms the
 * O(blocks) per-layout accounting needs. Blocks are identified by a
 * program-global index (proc-major, block-id-minor); a BatchTrace holds
 * no pointers and stays valid across Program moves.
 */
struct BatchTrace
{
    /// Branch-op kinds of the canonical stream (operands in opA/opB/opC).
    enum class Op : std::uint8_t {
        Cond,      ///< a=src block, b=traversed-edge dst, c=1 if Taken edge
        Uncond,    ///< a=src block, b=dst; no event if the jump was removed
        FallJump,  ///< a=src block, b=dst; event only if a jump was inserted
        Indirect,  ///< a=src block, b=dst
        Call,      ///< a=caller block, b=callee proc, c=call-site offset
        Ret,       ///< a=returning block, b=resume block, c=site offset
        RetExit,   ///< a=returning block; program exit (RAS pops, no event)
    };

    /// Builds the canonical form by replaying @p trace once.
    BatchTrace(const Program &program, const RecordedTrace &trace);

    // --- flattened program indexing -------------------------------------
    std::vector<std::uint32_t> blockBase;  ///< per proc: first global index
    std::uint32_t totalBlocks = 0;

    // --- per-global-block program facts ---------------------------------
    std::vector<std::uint8_t> term;        ///< Terminator
    std::vector<std::uint32_t> takenDst;   ///< global dst of the Taken edge
    std::vector<std::uint32_t> fallDst;    ///< global dst of the Fall edge

    // --- canonical full branch-op stream (BTB lanes) --------------------
    std::vector<std::uint8_t> ops;
    std::vector<std::uint32_t> opA, opB, opC;

    // --- dense sub-streams ----------------------------------------------
    /// Conditional executions only (PHT-family lanes).
    std::vector<std::uint32_t> condSrc;      ///< src global block
    std::vector<std::uint8_t> condViaTaken;  ///< traversed the Taken edge
    /// Call/return executions only (return-stack accounting).
    /// op: 0=push (Call), 1=pop+compare (Ret), 2=pop only (RetExit).
    std::vector<std::uint8_t> rasOps;
    std::vector<std::uint32_t> rasBlock;   ///< Call: caller; Ret: resume
    std::vector<std::uint32_t> rasOffset;  ///< call-site offset

    // --- layout-independent aggregates ----------------------------------
    std::vector<std::uint64_t> activations;  ///< block entries
    std::vector<std::uint64_t> takenCount;   ///< Taken-edge traversals
    std::vector<std::uint64_t> fallCount;    ///< FallThrough traversals
    std::uint64_t condExec = 0;
    std::uint64_t callExec = 0;
    std::uint64_t returnExec = 0;  ///< includes exit returns
    std::uint64_t exitReturns = 0;
    std::uint64_t indirectExec = 0;

    /// Approximate heap footprint of the buffers, in bytes.
    std::size_t sizeBytes() const;
};

/**
 * Replays the canonical trace against @p layout once, evaluating every
 * lane simultaneously. Returns one EvalResult per entry of @p lanes,
 * byte-identical to an ArchEvaluator replay with the same parameters.
 *
 * @param program the CFG (profile weights used only for LIKELY bits)
 * @param layout a layout materialized for @p program
 * @param trace the canonical trace built from the same program
 * @param lanes architecture parameters, one per requested evaluation
 */
std::vector<EvalResult> runBatchReplay(const Program &program,
                                       const ProgramLayout &layout,
                                       const BatchTrace &trace,
                                       const std::vector<EvalParams> &lanes);

/**
 * Instructions the recorded run executes under @p layout — exactly what
 * an ArchEvaluator accumulates via onInstrs — computed in O(blocks) from
 * the activation histogram, with no trace sweep. Equals the recorded
 * WalkResult's count whenever the layout neither inserts nor deletes
 * jumps on executed paths (e.g. most identity layouts).
 */
std::uint64_t batchLayoutInstrs(const BatchTrace &trace,
                                const ProgramLayout &layout);

}  // namespace balign

#endif  // BALIGN_SIM_BATCH_REPLAY_H
