#include "sim/icache.h"

#include "support/log.h"

namespace balign {

namespace {

std::size_t
log2Exact(std::size_t value, const char *what)
{
    if (value == 0 || (value & (value - 1)) != 0)
        panic("ICache: %s must be a power of two (got %zu)", what, value);
    std::size_t result = 0;
    while ((value >>= 1) != 0)
        ++result;
    return result;
}

}  // namespace

ICache::ICache(std::size_t size_bytes, std::size_t line_bytes)
{
    log2Exact(size_bytes, "size");
    log2Exact(line_bytes, "line size");
    if (line_bytes < kInstrBytes || size_bytes < line_bytes)
        panic("ICache: bad geometry %zu/%zu", size_bytes, line_bytes);
    instrsPerLine_ = line_bytes / kInstrBytes;
    lineShift_ = log2Exact(instrsPerLine_, "instrs per line");
    const std::size_t lines = size_bytes / line_bytes;
    indexMask_ = lines - 1;
    tags_.assign(lines, kNoAddr);
}

std::size_t
ICache::lineIndex(Addr addr) const
{
    return (addr >> lineShift_) & indexMask_;
}

bool
ICache::access(Addr addr)
{
    const Addr line_addr = addr >> lineShift_;
    Addr &tag = tags_[line_addr & indexMask_];
    if (tag == line_addr) {
        ++hits_;
        return true;
    }
    tag = line_addr;
    ++misses_;
    return false;
}

unsigned
ICache::accessRange(Addr addr, std::uint32_t count)
{
    if (count == 0)
        return 0;
    unsigned misses = 0;
    const Addr first = addr >> lineShift_;
    const Addr last = (addr + count - 1) >> lineShift_;
    for (Addr line = first; line <= last; ++line) {
        if (!access(line << lineShift_))
            ++misses;
    }
    return misses;
}

}  // namespace balign
