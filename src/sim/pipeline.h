/**
 * @file
 * Dual-issue Alpha AXP 21064-style pipeline timing model (paper §6.1).
 *
 * The 21064 is a dual-issue in-order machine whose conditional branch
 * prediction is "a cross between a direct-mapped PHT table and a BT/FNT
 * architecture": each instruction in the 8 KB on-chip I-cache carries a
 * single history bit recording the branch's previous direction; when a
 * cache line is (re)filled, the bits reinitialize to the static
 * backward-taken/forward-not-taken prediction derived from the branch
 * displacement sign. Misfetch bubbles can be squashed when the pipeline is
 * already stalled — the paper estimates roughly 30% of taken-branch
 * misfetches are hidden.
 *
 * The model estimates total execution time as
 *
 *   cycles = ceil(instructions / issue_width)
 *          + mispredicts * mispredict_penalty
 *          + misfetches * misfetch_penalty * (1 - squash_fraction)
 *          + icache_misses * miss_penalty
 *
 * which captures the first-order effects alignment changes: executed
 * instruction count (inserted/deleted jumps), prediction behaviour, and
 * instruction-cache locality.
 */

#ifndef BALIGN_SIM_PIPELINE_H
#define BALIGN_SIM_PIPELINE_H

#include <vector>

#include "bpred/ras.h"
#include "cfg/program.h"
#include "layout/layout_result.h"
#include "sim/icache.h"
#include "trace/branch_events.h"

namespace balign {

struct PipelineParams
{
    unsigned issueWidth = 2;
    double misfetchPenalty = 1.0;
    double mispredictPenalty = 5.0;  // ten instruction slots, dual issue
    /// Fraction of misfetch bubbles hidden behind other stalls.
    double misfetchSquashFraction = 0.30;
    std::size_t icacheBytes = 8192;
    std::size_t icacheLineBytes = 32;
    double icacheMissPenalty = 5.0;
    std::size_t rasEntries = 32;
};

class Alpha21064Model : public BranchEventHandler
{
  public:
    Alpha21064Model(const Program &program, const ProgramLayout &layout,
                    const PipelineParams &params = {});

    /// The EventSink to drive with a walk.
    EventSink &sink() { return adapter_; }

    void onInstrs(std::uint64_t count) override;
    void onBranch(const BranchEvent &event) override;
    void onFetchRange(Addr addr, std::uint32_t count) override;

    /// Estimated total cycles.
    double cycles() const;

    std::uint64_t instrs() const { return instrs_; }
    std::uint64_t misfetches() const { return misfetches_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    std::uint64_t icacheMisses() const { return icache_.misses(); }
    std::uint64_t condExec() const { return condExec_; }
    std::uint64_t condMispredicts() const { return condMispredicts_; }

  private:
    /// Per-cached-instruction-slot predictor state.
    enum class SlotState : std::uint8_t { Cold, NotTaken, Taken };

    std::size_t slotIndex(Addr addr) const { return addr & slotMask_; }

    PipelineParams params_;
    BranchEventAdapter adapter_;
    ICache icache_;
    ReturnStack ras_;
    std::vector<SlotState> slots_;
    std::size_t slotMask_;

    std::uint64_t instrs_ = 0;
    std::uint64_t misfetches_ = 0;
    std::uint64_t mispredicts_ = 0;
    std::uint64_t condExec_ = 0;
    std::uint64_t condMispredicts_ = 0;
};

}  // namespace balign

#endif  // BALIGN_SIM_PIPELINE_H
