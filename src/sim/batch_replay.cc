#include "sim/batch_replay.h"

#include "bpred/static_pred.h"
#include "layout/materialize.h"
#include "support/log.h"
#include "support/saturating_counter.h"
#include "trace/event.h"

namespace balign {

namespace {

constexpr std::uint32_t kNoIndex = 0xFFFFFFFFu;

/// condOutcome(realization, kind) flattened to lookup tables indexed by
/// [CondRealization][traversed the Taken edge].
constexpr bool kOutTaken[4][2] = {
    {false, true},   // FallAdjacent
    {true, false},   // TakenAdjacent
    {false, true},   // NeitherJumpToFall
    {true, false},   // NeitherJumpToTaken
};
constexpr bool kOutJump[4][2] = {
    {false, false},  // FallAdjacent
    {false, false},  // TakenAdjacent
    {true, false},   // NeitherJumpToFall
    {false, true},   // NeitherJumpToTaken
};

/// EventSink that canonicalizes a replay into a BatchTrace. Mirrors the
/// BranchEventAdapter state machine (trace/branch_events.cc), minus
/// everything layout-dependent.
class BatchTraceBuilder : public EventSink
{
  public:
    BatchTraceBuilder(const Program &program, BatchTrace &out)
        : program_(program), out_(out)
    {
    }

    void
    onBlock(ProcId proc, BlockId block) override
    {
        cur_ = global(proc, block);
        ++out_.activations[cur_];
    }

    void
    onCall(ProcId proc, BlockId block, const CallSite &site) override
    {
        const std::uint32_t g = global(proc, block);
        push(BatchTrace::Op::Call, g, site.callee, site.offset);
        pushRas(0, g, site.offset);
        ++out_.callExec;
    }

    void
    onReturn(ProcId proc, BlockId block, const CallSite &site) override
    {
        const std::uint32_t g = global(proc, block);
        if (pendingReturn()) {
            push(BatchTrace::Op::Ret, cur_, g, site.offset);
            pushRas(1, g, site.offset);
            ++out_.returnExec;
        }
        cur_ = g;
    }

    void
    onExit() override
    {
        if (pendingReturn()) {
            push(BatchTrace::Op::RetExit, cur_, 0, 0);
            pushRas(2, 0, 0);
            ++out_.returnExec;
            ++out_.exitReturns;
        }
        cur_ = kNoIndex;
    }

    void
    onEdge(ProcId proc, std::uint32_t edge_index) override
    {
        const Procedure &procedure = program_.proc(proc);
        const Edge &edge = procedure.edge(edge_index);
        const std::uint32_t src = global(proc, edge.src);
        const std::uint32_t dst = global(proc, edge.dst);
        switch (procedure.block(edge.src).term) {
          case Terminator::CondBranch: {
            const bool via_taken = edge.kind == EdgeKind::Taken;
            push(BatchTrace::Op::Cond, src, dst, via_taken ? 1 : 0);
            out_.condSrc.push_back(src);
            out_.condViaTaken.push_back(via_taken ? 1 : 0);
            ++out_.condExec;
            ++(via_taken ? out_.takenCount : out_.fallCount)[src];
            break;
          }
          case Terminator::UncondBranch:
            push(BatchTrace::Op::Uncond, src, dst, 0);
            ++out_.takenCount[src];
            break;
          case Terminator::FallThrough:
            push(BatchTrace::Op::FallJump, src, dst, 0);
            ++out_.fallCount[src];
            break;
          case Terminator::IndirectJump:
            push(BatchTrace::Op::Indirect, src, dst, 0);
            ++out_.indirectExec;
            break;
          case Terminator::Return:
            panic("BatchTraceBuilder: edge out of a return block");
        }
    }

  private:
    std::uint32_t
    global(ProcId proc, BlockId block) const
    {
        return out_.blockBase[proc] + block;
    }

    /// Like BranchEventAdapter::resolvePendingReturn: the block being
    /// left emits a Return event only when it actually ends in one.
    bool
    pendingReturn() const
    {
        return cur_ != kNoIndex &&
               static_cast<Terminator>(out_.term[cur_]) ==
                   Terminator::Return;
    }

    void
    push(BatchTrace::Op op, std::uint32_t a, std::uint32_t b,
         std::uint32_t c)
    {
        out_.ops.push_back(static_cast<std::uint8_t>(op));
        out_.opA.push_back(a);
        out_.opB.push_back(b);
        out_.opC.push_back(c);
    }

    void
    pushRas(std::uint8_t op, std::uint32_t block, std::uint32_t offset)
    {
        out_.rasOps.push_back(op);
        out_.rasBlock.push_back(block);
        out_.rasOffset.push_back(offset);
    }

    const Program &program_;
    BatchTrace &out_;
    std::uint32_t cur_ = kNoIndex;
};

}  // namespace

BatchTrace::BatchTrace(const Program &program, const RecordedTrace &trace)
{
    blockBase.resize(program.numProcs());
    std::uint32_t total = 0;
    for (ProcId p = 0; p < program.numProcs(); ++p) {
        blockBase[p] = total;
        total += static_cast<std::uint32_t>(program.proc(p).numBlocks());
    }
    totalBlocks = total;

    term.resize(total);
    takenDst.assign(total, kNoIndex);
    fallDst.assign(total, kNoIndex);
    activations.assign(total, 0);
    takenCount.assign(total, 0);
    fallCount.assign(total, 0);
    for (ProcId p = 0; p < program.numProcs(); ++p) {
        const Procedure &proc = program.proc(p);
        for (const BasicBlock &block : proc.blocks()) {
            const std::uint32_t g = blockBase[p] + block.id;
            term[g] = static_cast<std::uint8_t>(block.term);
            if (block.term != Terminator::CondBranch)
                continue;
            takenDst[g] =
                blockBase[p] +
                proc.edge(static_cast<std::uint32_t>(
                              proc.takenEdge(block.id)))
                    .dst;
            fallDst[g] =
                blockBase[p] +
                proc.edge(static_cast<std::uint32_t>(
                              proc.fallThroughEdge(block.id)))
                    .dst;
        }
    }

    BatchTraceBuilder builder(program, *this);
    trace.replay(program, builder);
}

std::size_t
BatchTrace::sizeBytes() const
{
    return ops.capacity() + opA.capacity() * 4 + opB.capacity() * 4 +
           opC.capacity() * 4 + condSrc.capacity() * 4 +
           condViaTaken.capacity() + rasOps.capacity() +
           rasBlock.capacity() * 4 + rasOffset.capacity() * 4 +
           (activations.capacity() + takenCount.capacity() +
            fallCount.capacity()) *
               8 +
           term.capacity() + takenDst.capacity() * 4 +
           fallDst.capacity() * 4 + blockBase.capacity() * 4;
}

namespace {

/// Per-layout structure-of-arrays tables: every fact a sweep gathers,
/// indexed by global block, so the inner loops never touch Program or
/// ProgramLayout.
struct LayoutTables
{
    std::vector<Addr> addr;
    std::vector<Addr> branchAddr;
    std::vector<Addr> jumpAddr;
    std::vector<std::uint32_t> baseInstrs;
    std::vector<std::uint8_t> cond;  ///< CondRealization
    std::vector<std::uint8_t> jumpInserted;
    std::vector<std::uint8_t> jumpRemoved;
    std::vector<Addr> condTarget;  ///< realized branch target (Cond only)
    std::vector<Addr> entryAddr;   ///< per proc
};

LayoutTables
flattenLayout(const BatchTrace &trace, const ProgramLayout &layout)
{
    LayoutTables t;
    const std::uint32_t n = trace.totalBlocks;
    t.addr.resize(n);
    t.branchAddr.resize(n);
    t.jumpAddr.resize(n);
    t.baseInstrs.resize(n);
    t.cond.resize(n);
    t.jumpInserted.resize(n);
    t.jumpRemoved.resize(n);
    t.condTarget.assign(n, kNoAddr);
    t.entryAddr.resize(layout.procs.size());

    for (ProcId p = 0; p < layout.procs.size(); ++p) {
        const ProcLayout &proc = layout.procs[p];
        t.entryAddr[p] = layout.procEntryAddr(p);
        const std::uint32_t base = trace.blockBase[p];
        for (std::uint32_t b = 0; b < proc.blocks.size(); ++b) {
            const BlockLayout &bl = proc.blocks[b];
            const std::uint32_t g = base + b;
            t.addr[g] = bl.addr;
            t.branchAddr[g] = bl.branchAddr;
            t.jumpAddr[g] = bl.jumpAddr;
            t.baseInstrs[g] = bl.baseInstrs;
            t.cond[g] = static_cast<std::uint8_t>(bl.cond);
            t.jumpInserted[g] = bl.jumpInserted ? 1 : 0;
            t.jumpRemoved[g] = bl.jumpRemoved ? 1 : 0;
        }
    }
    // Second pass: realized conditional-branch targets need final block
    // addresses.
    for (std::uint32_t g = 0; g < n; ++g) {
        if (static_cast<Terminator>(trace.term[g]) !=
            Terminator::CondBranch)
            continue;
        const bool targets_taken =
            branchTargetKind(static_cast<CondRealization>(t.cond[g])) ==
            EdgeKind::Taken;
        t.condTarget[g] =
            t.addr[targets_taken ? trace.takenDst[g] : trace.fallDst[g]];
    }
    return t;
}

/// Architecture-independent totals for one layout, all O(blocks).
struct SharedCounters
{
    std::uint64_t instrs = 0;
    std::uint64_t condTaken = 0;
    std::uint64_t uncondExec = 0;
    std::uint64_t btbLookups = 0;
};

SharedCounters
computeShared(const BatchTrace &trace, const LayoutTables &tables)
{
    SharedCounters shared;
    for (std::uint32_t g = 0; g < trace.totalBlocks; ++g) {
        shared.instrs += trace.activations[g] * tables.baseInstrs[g];
        switch (static_cast<Terminator>(trace.term[g])) {
          case Terminator::CondBranch: {
            const std::uint8_t real = tables.cond[g];
            const std::uint64_t taken = trace.takenCount[g];
            const std::uint64_t fall = trace.fallCount[g];
            shared.condTaken += (kOutTaken[real][1] ? taken : 0) +
                                (kOutTaken[real][0] ? fall : 0);
            const std::uint64_t jumps = (kOutJump[real][1] ? taken : 0) +
                                        (kOutJump[real][0] ? fall : 0);
            shared.instrs += jumps;
            shared.uncondExec += jumps;
            break;
          }
          case Terminator::UncondBranch:
            if (tables.jumpRemoved[g] == 0)
                shared.uncondExec += trace.takenCount[g];
            break;
          case Terminator::FallThrough:
            if (tables.jumpInserted[g] != 0) {
                shared.instrs += trace.fallCount[g];
                shared.uncondExec += trace.fallCount[g];
            }
            break;
          default:
            break;
        }
    }
    // Exit returns pop the return stack but emit no penalty-assessed
    // event, so they never reach a BTB lookup (evaluator.cc).
    shared.btbLookups = trace.condExec + shared.uncondExec +
                        trace.callExec + trace.indirectExec +
                        (trace.returnExec - trace.exitReturns);
    return shared;
}

/// Exact replica of ReturnStack (bpred/ras.cc): circular, depth-capped,
/// kNoAddr on underflow.
class RasState
{
  public:
    explicit RasState(std::size_t entries) : stack_(entries, kNoAddr)
    {
        if (entries == 0)
            panic("batch replay: need at least one return-stack entry");
    }

    void
    push(Addr return_addr)
    {
        stack_[top_] = return_addr;
        top_ = (top_ + 1) % stack_.size();
        if (depth_ < stack_.size())
            ++depth_;
    }

    Addr
    pop()
    {
        if (depth_ == 0)
            return kNoAddr;
        top_ = (top_ + stack_.size() - 1) % stack_.size();
        --depth_;
        return stack_[top_];
    }

  private:
    std::vector<Addr> stack_;
    std::size_t top_ = 0;
    std::size_t depth_ = 0;
};

/// Correct return-stack predictions over the dense call/return stream.
/// Layout-dependent only through wrap-around and underflow effects, so it
/// must be simulated, not derived.
std::uint64_t
countRasCorrect(const BatchTrace &trace, const LayoutTables &tables,
                std::size_t ras_entries)
{
    RasState ras(ras_entries);
    std::uint64_t correct = 0;
    const std::size_t n = trace.rasOps.size();
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t block = trace.rasBlock[i];
        switch (trace.rasOps[i]) {
          case 0:
            ras.push(tables.addr[block] + trace.rasOffset[i] + 1);
            break;
          case 1:
            correct += ras.pop() ==
                       tables.addr[block] + trace.rasOffset[i] + 1;
            break;
          default:
            ras.pop();
            break;
        }
    }
    return correct;
}

/// Penalties a conditional-branch stream costs a static predictor whose
/// per-block prediction is fixed: pure arithmetic over the traversal
/// histogram, no sweep at all.
void
tallyStaticCond(const BatchTrace &trace, const LayoutTables &tables,
                const std::vector<std::uint8_t> &predict_taken,
                std::uint64_t &mispredicts, std::uint64_t &misfetches)
{
    for (std::uint32_t g = 0; g < trace.totalBlocks; ++g) {
        if (static_cast<Terminator>(trace.term[g]) !=
            Terminator::CondBranch)
            continue;
        const std::uint8_t real = tables.cond[g];
        const bool pred = predict_taken[g] != 0;
        for (int via = 0; via < 2; ++via) {
            const std::uint64_t count =
                via != 0 ? trace.takenCount[g] : trace.fallCount[g];
            const bool taken = kOutTaken[real][via];
            if (pred != taken)
                mispredicts += count;
            else if (taken)
                misfetches += count;
        }
    }
}

/// One PHT-family lane: a branchless scan of the resolved conditional
/// stream. The predictor index rule is the only per-architecture part,
/// passed in as @p index (also responsible for history updates).
template <typename IndexFn>
void
scanPhtLane(const std::vector<Addr> &sites,
            const std::vector<std::uint8_t> &outcomes,
            std::vector<std::uint8_t> &table, std::uint8_t max,
            IndexFn &&index, std::uint64_t &mispredicts,
            std::uint64_t &misfetches)
{
    const std::uint8_t threshold = max / 2;
    const std::size_t n = sites.size();
    for (std::size_t k = 0; k < n; ++k) {
        const std::uint8_t taken = outcomes[k];
        const std::size_t idx = index(sites[k], taken);
        const std::uint8_t counter = table[idx];
        const std::uint8_t predicted = counter > threshold ? 1 : 0;
        const std::uint8_t wrong = predicted ^ taken;
        mispredicts += wrong;
        misfetches += static_cast<std::uint8_t>((wrong ^ 1) & taken);
        table[idx] = saturatingUpdate(counter, max, taken != 0);
    }
}

/// Structure-of-arrays BTB with the exact semantics of bpred/btb.cc:
/// full-tag set-associative, LRU by update tick, taken-only insertion,
/// weak-taken reset on insert.
class BtbLanes
{
  public:
    BtbLanes(std::size_t entries, std::size_t ways, unsigned counter_bits)
        : ways_(ways), setMask_(entries / ways - 1),
          max_(static_cast<std::uint8_t>((1u << counter_bits) - 1)),
          valid_(entries, 0), tag_(entries, 0), target_(entries, 0),
          counter_(entries, 0), lastUse_(entries, 0)
    {
        if (entries == 0 || ways == 0 || entries % ways != 0)
            panic("batch replay: bad BTB geometry %zux%zu", entries, ways);
        const std::size_t sets = entries / ways;
        if ((sets & (sets - 1)) != 0)
            panic("batch replay: BTB sets must be a power of two");
    }

    /// Index of the hitting entry, or SIZE_MAX.
    std::size_t
    find(Addr site) const
    {
        const std::size_t set = (site & setMask_) * ways_;
        for (std::size_t w = 0; w < ways_; ++w) {
            const std::size_t e = set + w;
            if (valid_[e] != 0 && tag_[e] == site)
                return e;
        }
        return SIZE_MAX;
    }

    bool counterTaken(std::size_t e) const { return counter_[e] > max_ / 2; }
    Addr target(std::size_t e) const { return target_[e]; }

    void
    update(Addr site, bool taken, Addr target)
    {
        ++tick_;
        const std::size_t e = find(site);
        if (e != SIZE_MAX) {
            counter_[e] = saturatingUpdate(counter_[e], max_, taken);
            if (taken)
                target_[e] = target;
            lastUse_[e] = tick_;
            return;
        }
        if (!taken)
            return;  // only taken branches are inserted
        const std::size_t set = (site & setMask_) * ways_;
        std::size_t victim = set;
        for (std::size_t w = 0; w < ways_; ++w) {
            const std::size_t candidate = set + w;
            if (valid_[candidate] == 0) {
                victim = candidate;
                break;
            }
            if (lastUse_[candidate] < lastUse_[victim])
                victim = candidate;
        }
        valid_[victim] = 1;
        tag_[victim] = site;
        target_[victim] = target;
        counter_[victim] =
            static_cast<std::uint8_t>(max_ / 2 + 1);  // resetWeak(true)
        lastUse_[victim] = tick_;
    }

  private:
    std::size_t ways_;
    std::size_t setMask_;
    std::uint8_t max_;
    std::uint64_t tick_ = 0;
    std::vector<std::uint8_t> valid_;
    std::vector<Addr> tag_;
    std::vector<Addr> target_;
    std::vector<std::uint8_t> counter_;
    std::vector<std::uint64_t> lastUse_;
};

/// Penalty counters a BTB sweep accumulates (the execution-mix counters
/// come from SharedCounters).
struct BtbSweepResult
{
    std::uint64_t btbHits = 0;
    std::uint64_t misfetches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t returnMispredicts = 0;
};

BtbSweepResult
runBtbLane(const BatchTrace &trace, const LayoutTables &tables,
           const EvalParams &params)
{
    BtbLanes btb(params.btbEntries, params.btbWays, params.counterBits);
    RasState ras(params.rasEntries);
    BtbSweepResult r;

    // ArchEvaluator::uncondBreak under a BTB: a hit predicting taken with
    // the right target is free, everything else redirects after decode.
    auto uncond_break = [&](Addr site, Addr target) {
        const std::size_t e = btb.find(site);
        if (e != SIZE_MAX) {
            ++r.btbHits;
            if (!(btb.counterTaken(e) && btb.target(e) == target))
                ++r.misfetches;
        } else {
            ++r.misfetches;
        }
        btb.update(site, true, target);
    };

    const std::size_t n = trace.ops.size();
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t a = trace.opA[i];
        const std::uint32_t b = trace.opB[i];
        switch (static_cast<BatchTrace::Op>(trace.ops[i])) {
          case BatchTrace::Op::Cond: {
            const std::uint8_t real = tables.cond[a];
            const bool via_taken = trace.opC[i] != 0;
            const bool taken = kOutTaken[real][via_taken ? 1 : 0];
            const Addr site = tables.branchAddr[a];
            const std::size_t e = btb.find(site);
            if (e != SIZE_MAX)
                ++r.btbHits;
            const bool predicted = e != SIZE_MAX && btb.counterTaken(e);
            const Addr target = tables.condTarget[a];
            if (predicted != taken) {
                ++r.mispredicts;
                ++r.condMispredicts;
            } else if (taken && btb.target(e) != target) {
                // Fixed conditional targets make this partial-tag-aliasing
                // path unreachable; replicated from the evaluator so the
                // two engines cannot drift.
                ++r.mispredicts;
                ++r.condMispredicts;
            }
            btb.update(site, taken, target);
            if (kOutJump[real][via_taken ? 1 : 0])
                uncond_break(tables.jumpAddr[a], tables.addr[b]);
            break;
          }
          case BatchTrace::Op::Uncond:
            if (tables.jumpRemoved[a] == 0)
                uncond_break(tables.branchAddr[a], tables.addr[b]);
            break;
          case BatchTrace::Op::FallJump:
            if (tables.jumpInserted[a] != 0)
                uncond_break(tables.jumpAddr[a], tables.addr[b]);
            break;
          case BatchTrace::Op::Indirect: {
            const Addr site = tables.branchAddr[a];
            const Addr target = tables.addr[b];
            const std::size_t e = btb.find(site);
            if (e != SIZE_MAX) {
                ++r.btbHits;
                if (!(btb.counterTaken(e) && btb.target(e) == target))
                    ++r.mispredicts;
            } else {
                ++r.mispredicts;
            }
            btb.update(site, true, target);
            break;
          }
          case BatchTrace::Op::Call: {
            const Addr site = tables.addr[a] + trace.opC[i];
            ras.push(site + 1);
            uncond_break(site, tables.entryAddr[b]);
            break;
          }
          case BatchTrace::Op::Ret: {
            const Addr predicted = ras.pop();
            const Addr target = tables.addr[b] + trace.opC[i] + 1;
            const Addr site = tables.branchAddr[a];
            const bool ras_correct = predicted == target;
            const std::size_t e = btb.find(site);
            if (e != SIZE_MAX) {
                ++r.btbHits;
                if (!ras_correct) {
                    ++r.mispredicts;
                    ++r.returnMispredicts;
                }
            } else if (ras_correct) {
                ++r.misfetches;
            } else {
                ++r.mispredicts;
                ++r.returnMispredicts;
            }
            btb.update(site, true, target);
            break;
          }
          case BatchTrace::Op::RetExit:
            // Exit returns pop the stack but assess no penalty and make
            // no BTB lookup (evaluator.cc early-out on kNoAddr).
            ras.pop();
            break;
        }
    }
    return r;
}

bool
usesBtb(Arch arch)
{
    return arch == Arch::BtbSmall || arch == Arch::BtbLarge;
}

bool
usesPht(Arch arch)
{
    return arch == Arch::PhtDirect || arch == Arch::PhtCorrelated ||
           arch == Arch::PhtLocal;
}

void
requirePowerOfTwo(std::size_t value, const char *what)
{
    if (value == 0 || (value & (value - 1)) != 0)
        panic("batch replay: %s must be a power of two (%zu)", what, value);
}

}  // namespace

std::uint64_t
batchLayoutInstrs(const BatchTrace &trace, const ProgramLayout &layout)
{
    std::uint64_t instrs = 0;
    for (ProcId p = 0; p < layout.procs.size(); ++p) {
        const ProcLayout &proc = layout.procs[p];
        const std::uint32_t base = trace.blockBase[p];
        for (std::uint32_t b = 0; b < proc.blocks.size(); ++b) {
            const BlockLayout &bl = proc.blocks[b];
            const std::uint32_t g = base + b;
            instrs += trace.activations[g] * bl.baseInstrs;
            switch (static_cast<Terminator>(trace.term[g])) {
              case Terminator::CondBranch: {
                const auto real = static_cast<std::uint8_t>(bl.cond);
                instrs += (kOutJump[real][1] ? trace.takenCount[g] : 0) +
                          (kOutJump[real][0] ? trace.fallCount[g] : 0);
                break;
              }
              case Terminator::FallThrough:
                if (bl.jumpInserted)
                    instrs += trace.fallCount[g];
                break;
              default:
                break;
            }
        }
    }
    return instrs;
}

std::vector<EvalResult>
runBatchReplay(const Program &program, const ProgramLayout &layout,
               const BatchTrace &trace,
               const std::vector<EvalParams> &lanes)
{
    std::vector<EvalResult> results(lanes.size());
    if (lanes.empty())
        return results;

    const LayoutTables tables = flattenLayout(trace, layout);
    const SharedCounters shared = computeShared(trace, tables);

    // Resolve the dense conditional stream once when any PHT lane needs
    // it: per-event site address and realized direction.
    bool any_pht = false;
    bool any_likely = false;
    for (const EvalParams &lane : lanes) {
        any_pht = any_pht || usesPht(lane.arch);
        any_likely = any_likely || lane.arch == Arch::Likely;
    }
    std::vector<Addr> cond_sites;
    std::vector<std::uint8_t> cond_outcomes;
    if (any_pht) {
        const std::size_t n = trace.condSrc.size();
        cond_sites.resize(n);
        cond_outcomes.resize(n);
        for (std::size_t k = 0; k < n; ++k) {
            const std::uint32_t src = trace.condSrc[k];
            cond_sites[k] = tables.branchAddr[src];
            cond_outcomes[k] =
                kOutTaken[tables.cond[src]][trace.condViaTaken[k]] ? 1 : 0;
        }
    }

    // LIKELY bits flattened to global block indices (profile-majority
    // realized direction; bpred/static_pred.cc is the source of truth).
    std::vector<std::uint8_t> likely_bits;
    if (any_likely) {
        const LikelyBits likely(program, layout);
        likely_bits.resize(trace.totalBlocks);
        for (ProcId p = 0; p < program.numProcs(); ++p) {
            const std::size_t blocks = program.proc(p).numBlocks();
            for (BlockId b = 0; b < blocks; ++b)
                likely_bits[trace.blockBase[p] + b] =
                    likely.taken(p, b) ? 1 : 0;
        }
    }

    // Correct return-stack pops are shared by every non-BTB lane with the
    // same stack size (BTB lanes re-simulate the stack inside their own
    // sweep, interleaved with their lookups).
    std::vector<std::pair<std::size_t, std::uint64_t>> ras_correct_cache;
    auto ras_correct_for = [&](std::size_t entries) {
        for (const auto &cached : ras_correct_cache) {
            if (cached.first == entries)
                return cached.second;
        }
        const std::uint64_t correct =
            countRasCorrect(trace, tables, entries);
        ras_correct_cache.emplace_back(entries, correct);
        return correct;
    };

    for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
        const EvalParams &params = lanes[lane];
        EvalResult &r = results[lane];
        r.penalties = params.penalties;
        r.instrs = shared.instrs;
        r.condExec = trace.condExec;
        r.condTaken = shared.condTaken;
        r.uncondExec = shared.uncondExec;
        r.callExec = trace.callExec;
        r.returnExec = trace.returnExec;
        r.indirectExec = trace.indirectExec;

        if (usesBtb(params.arch)) {
            const BtbSweepResult sweep =
                runBtbLane(trace, tables, params);
            r.btbLookups = shared.btbLookups;
            r.btbHits = sweep.btbHits;
            r.misfetches = sweep.misfetches;
            r.mispredicts = sweep.mispredicts;
            r.condMispredicts = sweep.condMispredicts;
            r.returnMispredicts = sweep.returnMispredicts;
            continue;
        }

        // Non-BTB lanes: only the conditional-branch penalties vary by
        // architecture. Everything else is the shared execution mix plus
        // the return-stack accuracy.
        std::uint64_t cond_misp = 0;
        std::uint64_t cond_misf = 0;
        switch (params.arch) {
          case Arch::Fallthrough:
            // Never predicts taken: every realized-taken conditional
            // mispredicts, none misfetch.
            cond_misp = shared.condTaken;
            break;
          case Arch::BtFnt: {
            std::vector<std::uint8_t> predict(trace.totalBlocks, 0);
            for (std::uint32_t g = 0; g < trace.totalBlocks; ++g) {
                if (static_cast<Terminator>(trace.term[g]) ==
                    Terminator::CondBranch)
                    predict[g] = btFntPredictsTaken(tables.branchAddr[g],
                                                    tables.condTarget[g])
                                     ? 1
                                     : 0;
            }
            tallyStaticCond(trace, tables, predict, cond_misp, cond_misf);
            break;
          }
          case Arch::Likely:
            tallyStaticCond(trace, tables, likely_bits, cond_misp,
                            cond_misf);
            break;
          case Arch::PhtDirect: {
            requirePowerOfTwo(params.phtEntries, "PHT entries");
            const auto max = static_cast<std::uint8_t>(
                (1u << params.counterBits) - 1);
            std::vector<std::uint8_t> table(
                params.phtEntries, static_cast<std::uint8_t>(max / 2));
            const std::size_t mask = params.phtEntries - 1;
            scanPhtLane(
                cond_sites, cond_outcomes, table, max,
                [mask](Addr site, std::uint8_t) { return site & mask; },
                cond_misp, cond_misf);
            break;
          }
          case Arch::PhtCorrelated: {
            requirePowerOfTwo(params.phtEntries, "gshare entries");
            const auto max = static_cast<std::uint8_t>(
                (1u << params.counterBits) - 1);
            std::vector<std::uint8_t> table(
                params.phtEntries, static_cast<std::uint8_t>(max / 2));
            const std::size_t mask = params.phtEntries - 1;
            const std::uint64_t history_mask =
                (1ull << params.historyBits) - 1;
            std::uint64_t history = 0;
            scanPhtLane(
                cond_sites, cond_outcomes, table, max,
                [&history, mask, history_mask](Addr site,
                                               std::uint8_t taken) {
                    const std::size_t idx = (site ^ history) & mask;
                    history = ((history << 1) | taken) & history_mask;
                    return idx;
                },
                cond_misp, cond_misf);
            break;
          }
          case Arch::PhtLocal: {
            requirePowerOfTwo(params.phtEntries, "history entries");
            const auto max = static_cast<std::uint8_t>(
                (1u << params.counterBits) - 1);
            std::vector<std::uint8_t> table(
                std::size_t{1} << params.historyBits,
                static_cast<std::uint8_t>(max / 2));
            std::vector<std::uint32_t> histories(params.phtEntries, 0);
            const std::size_t hist_mask = params.phtEntries - 1;
            const std::uint32_t pattern_mask =
                (1u << params.historyBits) - 1;
            scanPhtLane(
                cond_sites, cond_outcomes, table, max,
                [&histories, hist_mask, pattern_mask](Addr site,
                                                      std::uint8_t taken) {
                    std::uint32_t &history = histories[site & hist_mask];
                    const std::size_t idx = history & pattern_mask;
                    history = ((history << 1) | taken) & pattern_mask;
                    return idx;
                },
                cond_misp, cond_misf);
            break;
          }
          default:
            panic("batch replay: unexpected architecture");
        }

        const std::uint64_t ras_ok = ras_correct_for(params.rasEntries);
        const std::uint64_t ras_bad =
            trace.returnExec - trace.exitReturns - ras_ok;
        r.condMispredicts = cond_misp;
        r.returnMispredicts = ras_bad;
        // Misfetches: every unconditional break and call, every correct
        // return-stack pop, plus correctly-predicted taken conditionals.
        r.misfetches =
            shared.uncondExec + trace.callExec + ras_ok + cond_misf;
        // Mispredicts: indirect jumps, wrong return-stack pops, and the
        // architecture's conditional mispredictions.
        r.mispredicts = trace.indirectExec + ras_bad + cond_misp;
    }
    return results;
}

}  // namespace balign
