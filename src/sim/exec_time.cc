#include "sim/exec_time.h"

#include "core/align_program.h"
#include "layout/materialize.h"
#include "sim/cpi.h"
#include "trace/recorder.h"
#include "trace/walker.h"
#include "workload/generator.h"

namespace balign {

ExecTimeResult
runExecTime(const ProgramSpec &spec, const PipelineParams &params,
            PhaseTimes *times)
{
    Program generated;
    {
        ScopedPhaseTimer timer(times, "generate");
        generated = generateProgram(spec);
    }
    WalkOptions walk_options;
    walk_options.seed = traceSeed(spec);
    walk_options.instrBudget = spec.traceInstrs;
    PreparedProgram prepared;
    {
        ScopedPhaseTimer timer(times, "profile");
        prepared =
            prepareProgram(std::move(generated), walk_options, spec.name);
    }
    const Program &program = prepared.program;

    // Layouts: the greedy alignment used everywhere, and the Try15/BTB
    // alignment (paper §6.1).
    ProgramLayout orig, greedy, try15;
    {
        ScopedPhaseTimer timer(times, "align");
        orig = originalLayout(program);
        const CostModel btb_model(Arch::PhtDirect);
        AlignOptions options;
        greedy = alignProgram(program, AlignerKind::Greedy, nullptr, options);
        try15 = alignProgram(program, AlignerKind::Try15, &btb_model,
                             options);
    }

    Alpha21064Model orig_model(program, orig, params);
    Alpha21064Model greedy_model(program, greedy, params);
    Alpha21064Model try15_model(program, try15, params);
    {
        // One independent replay of the recorded trace per pipeline model.
        ScopedPhaseTimer timer(times, "replay");
        prepared.trace->replay(program, orig_model.sink());
        prepared.trace->replay(program, greedy_model.sink());
        prepared.trace->replay(program, try15_model.sink());
    }

    ExecTimeResult result;
    result.name = spec.name;
    result.originalCycles = orig_model.cycles();
    result.greedyRelative = greedy_model.cycles() / orig_model.cycles();
    result.try15Relative = try15_model.cycles() / orig_model.cycles();
    result.origMispredicts = orig_model.mispredicts();
    result.greedyMispredicts = greedy_model.mispredicts();
    result.try15Mispredicts = try15_model.mispredicts();
    result.origICacheMisses = orig_model.icacheMisses();
    result.try15ICacheMisses = try15_model.icacheMisses();
    result.origMisfetches = orig_model.misfetches();
    result.try15Misfetches = try15_model.misfetches();
    result.origCyclesTotal = orig_model.cycles();
    result.origInstrs = orig_model.instrs();
    return result;
}

}  // namespace balign
