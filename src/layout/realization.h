/**
 * @file
 * How a conditional block's two CFG out-edges are realized in a concrete
 * layout. Shared between the layout materializer and the branch cost model.
 */

#ifndef BALIGN_LAYOUT_REALIZATION_H
#define BALIGN_LAYOUT_REALIZATION_H

#include <cstdint>

namespace balign {

/**
 * Realization of a conditional block in a layout. "Taken edge" / "fall
 * edge" refer to the CFG's EdgeKind::Taken / EdgeKind::FallThrough edges
 * (the branch's semantic outcomes), independent of layout.
 */
enum class CondRealization : std::uint8_t {
    /// CFG fall edge is layout-adjacent; branch keeps its sense.
    FallAdjacent,
    /// CFG taken edge is layout-adjacent; branch sense inverted.
    TakenAdjacent,
    /// Neither edge adjacent: branch (original sense) to the taken target,
    /// followed by an inserted unconditional jump to the fall target.
    NeitherJumpToFall,
    /// Neither edge adjacent: branch sense inverted (branch targets the CFG
    /// fall successor), inserted jump to the CFG taken successor. This is
    /// the paper's loop transformation (Fig. 2 discussion): the hot back
    /// edge becomes a correctly predicted not-taken branch plus a jump.
    NeitherJumpToTaken,
};

/// Printable name.
const char *condRealizationName(CondRealization realization);

/// Rough direction guess for a branch target during alignment, before final
/// addresses exist (paper §6: the true direction is unknowable until chains
/// are placed).
enum class DirHint : std::uint8_t {
    Forward,
    Backward,
    Unknown,  ///< treated conservatively as Forward by BT/FNT costing
};

}  // namespace balign

#endif  // BALIGN_LAYOUT_REALIZATION_H
