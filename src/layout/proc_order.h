/**
 * @file
 * Procedure ordering (extension).
 *
 * The paper restricts itself to reordering blocks within procedures; it
 * cites Pettis & Hansen, whose "procedure positioning" additionally places
 * procedures that call each other frequently close together to reduce
 * instruction-cache conflicts. This module implements that classic greedy
 * algorithm over the dynamic call graph as an optional extension, and the
 * materializer overload below lays procedures out in the chosen order.
 */

#ifndef BALIGN_LAYOUT_PROC_ORDER_H
#define BALIGN_LAYOUT_PROC_ORDER_H

#include <map>
#include <utility>
#include <vector>

#include "cfg/program.h"
#include "layout/materialize.h"

namespace balign {

/// A weighted call-graph edge set: (caller, callee) -> dynamic count.
using CallGraph = std::map<std::pair<ProcId, ProcId>, Weight>;

/**
 * Pettis–Hansen procedure positioning: call-graph edges are visited in
 * decreasing weight order and their endpoint groups are concatenated,
 * keeping the hot pair as close as the existing groups allow (the better
 * of the four concatenation orientations is chosen by the distance of the
 * pair in the combined list). The group containing main comes first;
 * remaining groups follow in decreasing total weight.
 *
 * @return a permutation of all procedure ids.
 */
std::vector<ProcId> orderProcsByCallGraph(const Program &program,
                                          const CallGraph &calls);

/**
 * Materializes a program with an explicit procedure placement order (the
 * paper's experiments always use id order; this overload serves the
 * procedure-ordering extension).
 */
ProgramLayout materializeProgramOrdered(
    const Program &program, const std::vector<std::vector<BlockId>> &orders,
    const std::vector<ProcId> &proc_order,
    const MaterializeOptions &options = {});

}  // namespace balign

#endif  // BALIGN_LAYOUT_PROC_ORDER_H
