#include "layout/layout_diff.h"

#include <sstream>

namespace balign {

namespace {

/// Formats an Addr, rendering the kNoAddr sentinel readably.
std::string
addrStr(Addr addr)
{
    return addr == kNoAddr ? "none" : std::to_string(addr);
}

}  // namespace

std::string
describeLayoutDifference(const ProgramLayout &a, const ProgramLayout &b)
{
    std::ostringstream out;
    if (a.procs.size() != b.procs.size()) {
        out << "procedure count " << a.procs.size() << " vs "
            << b.procs.size();
        return out.str();
    }
    if (a.totalInstrs != b.totalInstrs) {
        out << "program totalInstrs " << a.totalInstrs << " vs "
            << b.totalInstrs;
        return out.str();
    }
    for (ProcId p = 0; p < a.procs.size(); ++p) {
        const ProcLayout &pa = a.procs[p];
        const ProcLayout &pb = b.procs[p];
        out.str("");
        out << "proc " << p << ": ";
        if (pa.order != pb.order) {
            out << "block order differs";
            return out.str();
        }
        if (pa.base != pb.base) {
            out << "base " << pa.base << " vs " << pb.base;
            return out.str();
        }
        if (pa.totalInstrs != pb.totalInstrs) {
            out << "totalInstrs " << pa.totalInstrs << " vs "
                << pb.totalInstrs;
            return out.str();
        }
        if (pa.jumpsInserted != pb.jumpsInserted ||
            pa.jumpsRemoved != pb.jumpsRemoved ||
            pa.sensesInverted != pb.sensesInverted) {
            out << "transform counters (" << pa.jumpsInserted << ","
                << pa.jumpsRemoved << "," << pa.sensesInverted << ") vs ("
                << pb.jumpsInserted << "," << pb.jumpsRemoved << ","
                << pb.sensesInverted << ")";
            return out.str();
        }
        if (pa.blocks.size() != pb.blocks.size()) {
            out << "block count " << pa.blocks.size() << " vs "
                << pb.blocks.size();
            return out.str();
        }
        for (BlockId id = 0; id < pa.blocks.size(); ++id) {
            const BlockLayout &ba = pa.blocks[id];
            const BlockLayout &bb = pb.blocks[id];
            out.str("");
            out << "proc " << p << " block " << id << ": ";
            if (ba.addr != bb.addr) {
                out << "addr " << addrStr(ba.addr) << " vs "
                    << addrStr(bb.addr);
                return out.str();
            }
            if (ba.orderIndex != bb.orderIndex) {
                out << "orderIndex " << ba.orderIndex << " vs "
                    << bb.orderIndex;
                return out.str();
            }
            if (ba.finalInstrs != bb.finalInstrs ||
                ba.baseInstrs != bb.baseInstrs) {
                out << "sizes (" << ba.finalInstrs << "," << ba.baseInstrs
                    << ") vs (" << bb.finalInstrs << "," << bb.baseInstrs
                    << ")";
                return out.str();
            }
            if (ba.cond != bb.cond) {
                out << "cond realization differs";
                return out.str();
            }
            if (ba.jumpInserted != bb.jumpInserted ||
                ba.jumpRemoved != bb.jumpRemoved) {
                out << "jump flags (" << ba.jumpInserted << ","
                    << ba.jumpRemoved << ") vs (" << bb.jumpInserted << ","
                    << bb.jumpRemoved << ")";
                return out.str();
            }
            if (ba.branchAddr != bb.branchAddr ||
                ba.jumpAddr != bb.jumpAddr) {
                out << "branch/jump addrs (" << addrStr(ba.branchAddr)
                    << "," << addrStr(ba.jumpAddr) << ") vs ("
                    << addrStr(bb.branchAddr) << "," << addrStr(bb.jumpAddr)
                    << ")";
                return out.str();
            }
        }
    }
    return "";
}

bool
layoutsIdentical(const ProgramLayout &a, const ProgramLayout &b)
{
    return describeLayoutDifference(a, b).empty();
}

}  // namespace balign
