#include "layout/proc_order.h"

#include <algorithm>
#include <numeric>

#include "support/log.h"

namespace balign {

namespace {

/// Distance (in list positions) between two procedures in a group list.
std::size_t
pairDistance(const std::vector<ProcId> &group, ProcId a, ProcId b)
{
    std::size_t pos_a = group.size(), pos_b = group.size();
    for (std::size_t i = 0; i < group.size(); ++i) {
        if (group[i] == a)
            pos_a = i;
        if (group[i] == b)
            pos_b = i;
    }
    return pos_a > pos_b ? pos_a - pos_b : pos_b - pos_a;
}

}  // namespace

std::vector<ProcId>
orderProcsByCallGraph(const Program &program, const CallGraph &calls)
{
    const std::size_t n = program.numProcs();

    // Each procedure starts in its own group.
    std::vector<std::vector<ProcId>> groups(n);
    std::vector<std::size_t> group_of(n);
    std::vector<Weight> group_weight(n, 0);
    for (ProcId p = 0; p < n; ++p) {
        groups[p] = {p};
        group_of[p] = p;
    }

    // Visit call edges heaviest first.
    struct EdgeRec
    {
        ProcId caller, callee;
        Weight weight;
    };
    std::vector<EdgeRec> edges;
    edges.reserve(calls.size());
    for (const auto &[pair, weight] : calls) {
        if (pair.first != pair.second && weight > 0)
            edges.push_back(EdgeRec{pair.first, pair.second, weight});
    }
    std::stable_sort(edges.begin(), edges.end(),
                     [](const EdgeRec &a, const EdgeRec &b) {
                         return a.weight > b.weight;
                     });

    for (const auto &edge : edges) {
        const std::size_t ga = group_of[edge.caller];
        const std::size_t gb = group_of[edge.callee];
        if (ga == gb)
            continue;
        group_weight[ga] += edge.weight;

        // Choose the concatenation orientation that puts the hot pair
        // closest together: forward/reversed first group x plain/reversed
        // second group.
        const std::vector<ProcId> &a = groups[ga];
        const std::vector<ProcId> &b = groups[gb];
        std::vector<ProcId> best;
        std::size_t best_distance = ~static_cast<std::size_t>(0);
        for (int flip_a = 0; flip_a < 2; ++flip_a) {
            for (int flip_b = 0; flip_b < 2; ++flip_b) {
                std::vector<ProcId> candidate = a;
                if (flip_a)
                    std::reverse(candidate.begin(), candidate.end());
                std::vector<ProcId> tail = b;
                if (flip_b)
                    std::reverse(tail.begin(), tail.end());
                candidate.insert(candidate.end(), tail.begin(),
                                 tail.end());
                const std::size_t distance =
                    pairDistance(candidate, edge.caller, edge.callee);
                if (distance < best_distance) {
                    best_distance = distance;
                    best = std::move(candidate);
                }
            }
        }
        groups[ga] = std::move(best);
        group_weight[ga] += group_weight[gb];
        for (ProcId p : groups[gb])
            group_of[p] = ga;
        groups[gb].clear();
    }

    // Emit: main's group first, the rest heaviest-first (ties by the
    // smallest member id for determinism).
    std::vector<std::size_t> group_ids;
    for (std::size_t g = 0; g < n; ++g) {
        if (!groups[g].empty())
            group_ids.push_back(g);
    }
    const std::size_t main_group = group_of[program.mainProc()];
    std::stable_sort(group_ids.begin(), group_ids.end(),
                     [&](std::size_t x, std::size_t y) {
                         if (x == main_group)
                             return y != main_group;
                         if (y == main_group)
                             return false;
                         if (group_weight[x] != group_weight[y])
                             return group_weight[x] > group_weight[y];
                         return groups[x].front() < groups[y].front();
                     });

    std::vector<ProcId> order;
    order.reserve(n);
    for (std::size_t g : group_ids)
        for (ProcId p : groups[g])
            order.push_back(p);
    return order;
}

ProgramLayout
materializeProgramOrdered(const Program &program,
                          const std::vector<std::vector<BlockId>> &orders,
                          const std::vector<ProcId> &proc_order,
                          const MaterializeOptions &options)
{
    if (orders.size() != program.numProcs() ||
        proc_order.size() != program.numProcs())
        panic("materializeProgramOrdered: size mismatch");
    {
        std::vector<bool> seen(program.numProcs(), false);
        for (ProcId p : proc_order) {
            if (p >= program.numProcs() || seen[p])
                panic("materializeProgramOrdered: bad procedure order");
            seen[p] = true;
        }
    }

    ProgramLayout layout;
    layout.procs.resize(program.numProcs());
    Addr base = 0;
    for (ProcId p : proc_order) {
        layout.procs[p] =
            materializeProc(program.proc(p), orders[p], base, options);
        base += layout.procs[p].totalInstrs;
    }
    layout.totalInstrs = base;
    return layout;
}

}  // namespace balign
