#include "layout/chain_order.h"

#include <algorithm>
#include <numeric>

#include "support/log.h"

namespace balign {

const char *
chainOrderPolicyName(ChainOrderPolicy policy)
{
    switch (policy) {
      case ChainOrderPolicy::HotFirst: return "hot-first";
      case ChainOrderPolicy::BtFntPrecedence: return "btfnt-precedence";
    }
    return "?";
}

namespace {

/// Heat of a chain: the maximum activation weight of any member block.
Weight
chainHeat(const Procedure &proc, const std::vector<BlockId> &chain)
{
    Weight heat = 0;
    for (BlockId id : chain)
        heat = std::max(heat, proc.blockWeight(id));
    return heat;
}

/// True if adding edge from -> to creates a cycle in the precedence DAG.
bool
createsCycle(const std::vector<std::vector<std::size_t>> &succs,
             std::size_t from, std::size_t to)
{
    if (from == to)
        return true;
    // DFS from `to` looking for `from`.
    std::vector<std::size_t> stack{to};
    std::vector<bool> seen(succs.size(), false);
    seen[to] = true;
    while (!stack.empty()) {
        const std::size_t cur = stack.back();
        stack.pop_back();
        for (std::size_t next : succs[cur]) {
            if (next == from)
                return true;
            if (!seen[next]) {
                seen[next] = true;
                stack.push_back(next);
            }
        }
    }
    return false;
}

}  // namespace

std::vector<BlockId>
orderChains(const Procedure &proc, const ChainSet &chains,
            ChainOrderPolicy policy)
{
    const auto chain_lists = chains.chains();
    const std::size_t num_chains = chain_lists.size();

    // Identify each block's chain and the entry chain.
    std::vector<std::size_t> chain_of(proc.numBlocks(), 0);
    std::size_t entry_chain = 0;
    for (std::size_t c = 0; c < num_chains; ++c) {
        for (BlockId id : chain_lists[c]) {
            chain_of[id] = c;
            if (id == proc.entry())
                entry_chain = c;
        }
    }

    std::vector<Weight> heat(num_chains);
    for (std::size_t c = 0; c < num_chains; ++c)
        heat[c] = chainHeat(proc, chain_lists[c]);

    // The order in which chains will be emitted.
    std::vector<std::size_t> chain_order;
    chain_order.reserve(num_chains);

    if (policy == ChainOrderPolicy::HotFirst) {
        chain_order.resize(num_chains);
        std::iota(chain_order.begin(), chain_order.end(), 0);
        std::stable_sort(chain_order.begin(), chain_order.end(),
                         [&](std::size_t a, std::size_t b) {
                             if (a == entry_chain)
                                 return b != entry_chain;
                             if (b == entry_chain)
                                 return false;
                             if (heat[a] != heat[b])
                                 return heat[a] > heat[b];
                             return chain_lists[a].front() <
                                    chain_lists[b].front();
                         });
    } else {
        // BT/FNT precedence: collect votes from conditional edges that
        // cross chains.
        struct Vote
        {
            std::size_t before;
            std::size_t after;
            Weight weight;
        };
        std::vector<Vote> votes;
        for (const auto &block : proc.blocks()) {
            if (block.term != Terminator::CondBranch)
                continue;
            const auto taken_idx =
                static_cast<std::uint32_t>(proc.takenEdge(block.id));
            const auto fall_idx =
                static_cast<std::uint32_t>(proc.fallThroughEdge(block.id));
            const Edge &taken = proc.edge(taken_idx);
            const Edge &fall = proc.edge(fall_idx);
            // Only votes about the realized-taken direction matter. If the
            // taken successor is chained directly after the block, the
            // sense will invert and the CFG fall edge becomes the realized
            // branch; model both cases through whichever CFG successor is
            // NOT the chain successor.
            const BlockId chained = chains.next(block.id);
            const Edge *branch_edge = &taken;
            const Edge *through_edge = &fall;
            if (chained == taken.dst && chained != kNoBlock) {
                branch_edge = &fall;
                through_edge = &taken;
            }
            const std::size_t src_chain = chain_of[block.id];
            const std::size_t dst_chain = chain_of[branch_edge->dst];
            if (src_chain == dst_chain)
                continue;  // intra-chain; position already fixed
            if (branch_edge->weight >= through_edge->weight) {
                // Frequently taken: want the target earlier (backward
                // branch, predicted taken). Never constrain the entry
                // chain to be non-first.
                if (src_chain != entry_chain) {
                    votes.push_back(
                        {dst_chain, src_chain, branch_edge->weight});
                }
            } else {
                if (dst_chain != entry_chain) {
                    votes.push_back(
                        {src_chain, dst_chain, branch_edge->weight});
                }
            }
        }
        std::stable_sort(votes.begin(), votes.end(),
                         [](const Vote &a, const Vote &b) {
                             return a.weight > b.weight;
                         });

        std::vector<std::vector<std::size_t>> succs(num_chains);
        std::vector<std::size_t> indegree(num_chains, 0);
        for (const auto &vote : votes) {
            if (createsCycle(succs, vote.before, vote.after))
                continue;
            succs[vote.before].push_back(vote.after);
            ++indegree[vote.after];
        }

        // Kahn's algorithm; among available chains pick the entry chain
        // first, then hottest-first.
        std::vector<bool> emitted(num_chains, false);
        std::vector<std::size_t> available;
        for (std::size_t c = 0; c < num_chains; ++c) {
            if (indegree[c] == 0)
                available.push_back(c);
        }
        while (chain_order.size() < num_chains) {
            if (available.empty()) {
                // Constraint edges never form cycles, so this only happens
                // if precedences into not-yet-available chains remain;
                // cannot occur, but guard against it.
                panic("orderChains: precedence graph stuck");
            }
            std::size_t best = available.front();
            std::size_t best_pos = 0;
            for (std::size_t i = 1; i < available.size(); ++i) {
                const std::size_t cand = available[i];
                if (chain_order.empty()) {
                    // The first emitted chain must be the entry chain; it
                    // always has in-degree zero by construction.
                    if (cand == entry_chain) {
                        best = cand;
                        best_pos = i;
                    }
                    if (best == entry_chain)
                        continue;
                }
                if (best != entry_chain &&
                    (heat[cand] > heat[best] ||
                     (heat[cand] == heat[best] &&
                      chain_lists[cand].front() < chain_lists[best].front()))) {
                    best = cand;
                    best_pos = i;
                }
            }
            if (chain_order.empty() && best != entry_chain) {
                // entry chain must come first; find it if available.
                for (std::size_t i = 0; i < available.size(); ++i) {
                    if (available[i] == entry_chain) {
                        best = entry_chain;
                        best_pos = i;
                        break;
                    }
                }
            }
            available.erase(available.begin() +
                            static_cast<std::ptrdiff_t>(best_pos));
            emitted[best] = true;
            chain_order.push_back(best);
            for (std::size_t next : succs[best]) {
                if (--indegree[next] == 0)
                    available.push_back(next);
            }
        }
    }

    // Concatenate chains into the final block order.
    std::vector<BlockId> order;
    order.reserve(proc.numBlocks());
    for (std::size_t c : chain_order) {
        for (BlockId id : chain_lists[c])
            order.push_back(id);
    }
    return order;
}

}  // namespace balign
