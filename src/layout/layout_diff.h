/**
 * @file
 * Field-by-field comparison of two program layouts. "Byte-identical" in
 * the incremental-realignment contract means exactly this: every order
 * entry, every BlockLayout field (addresses included), every per-procedure
 * accounting counter, and the program totals all agree.
 */

#ifndef BALIGN_LAYOUT_LAYOUT_DIFF_H
#define BALIGN_LAYOUT_LAYOUT_DIFF_H

#include <string>

#include "layout/layout_result.h"

namespace balign {

/**
 * Describes the first difference between two program layouts, or returns
 * the empty string when they are identical in every field.
 */
std::string describeLayoutDifference(const ProgramLayout &a,
                                     const ProgramLayout &b);

/// True when describeLayoutDifference would return "".
bool layoutsIdentical(const ProgramLayout &a, const ProgramLayout &b);

}  // namespace balign

#endif  // BALIGN_LAYOUT_LAYOUT_DIFF_H
