#include "layout/materialize.h"

#include <algorithm>

#include "support/log.h"

namespace balign {

CondOutcome
condOutcome(CondRealization realization, EdgeKind kind)
{
    const bool via_taken_edge = kind == EdgeKind::Taken;
    switch (realization) {
      case CondRealization::FallAdjacent:
        return {via_taken_edge, false};
      case CondRealization::TakenAdjacent:
        return {!via_taken_edge, false};
      case CondRealization::NeitherJumpToFall:
        // Branch targets the taken successor; the fall successor is
        // reached by not-taken + inserted jump.
        return via_taken_edge ? CondOutcome{true, false}
                              : CondOutcome{false, true};
      case CondRealization::NeitherJumpToTaken:
        // Inverted: branch targets the fall successor; the taken successor
        // is reached by not-taken + inserted jump.
        return via_taken_edge ? CondOutcome{false, true}
                              : CondOutcome{true, false};
    }
    panic("condOutcome: bad realization");
}

EdgeKind
branchTargetKind(CondRealization realization)
{
    switch (realization) {
      case CondRealization::FallAdjacent:
      case CondRealization::NeitherJumpToFall:
        return EdgeKind::Taken;
      case CondRealization::TakenAdjacent:
      case CondRealization::NeitherJumpToTaken:
        return EdgeKind::FallThrough;
    }
    panic("branchTargetKind: bad realization");
}

const char *
instrClassName(InstrClass cls)
{
    switch (cls) {
      case InstrClass::Body: return "body";
      case InstrClass::Call: return "call";
      case InstrClass::CondBranch: return "cond-branch";
      case InstrClass::Jump: return "jump";
      case InstrClass::IndirectJump: return "indirect-jump";
      case InstrClass::Return: return "return";
    }
    return "?";
}

namespace {

/// Destination block of an edge kind out of @p id, or kNoBlock.
BlockId
edgeDst(const Procedure &proc, BlockId id, EdgeKind kind)
{
    const std::int64_t index = kind == EdgeKind::Taken
                                   ? proc.takenEdge(id)
                                   : proc.fallThroughEdge(id);
    return index >= 0 ? proc.edge(static_cast<std::uint32_t>(index)).dst
                      : kNoBlock;
}

}  // namespace

std::vector<LayoutInstr>
enumerateProcInstrs(const Procedure &proc, const ProcLayout &layout)
{
    std::vector<LayoutInstr> instrs;
    instrs.reserve(layout.totalInstrs);
    for (const BlockId id : layout.order) {
        const BasicBlock &block = proc.block(id);
        const BlockLayout &bl = layout.blocks[id];

        // Call slots by original instruction offset; the terminator slot
        // (numInstrs - 1) takes precedence when the terminator is a
        // branch, so a malformed overlapping call offset never hides it.
        std::vector<ProcId> callee_at(bl.baseInstrs, kNoProc);
        for (const CallSite &call : block.calls) {
            if (call.offset < callee_at.size())
                callee_at[call.offset] = call.callee;
        }

        const bool has_term_slot = block.hasBranchInstr() && !bl.jumpRemoved;
        for (std::uint32_t slot = 0; slot < bl.baseInstrs; ++slot) {
            LayoutInstr instr;
            instr.wordAddr = bl.addr + slot;
            instr.proc = proc.id();
            instr.block = id;
            if (has_term_slot && slot == bl.baseInstrs - 1) {
                switch (block.term) {
                  case Terminator::CondBranch:
                    instr.cls = InstrClass::CondBranch;
                    instr.targetBlock =
                        edgeDst(proc, id, branchTargetKind(bl.cond));
                    break;
                  case Terminator::UncondBranch:
                    instr.cls = InstrClass::Jump;
                    instr.targetBlock = edgeDst(proc, id, EdgeKind::Taken);
                    break;
                  case Terminator::IndirectJump:
                    instr.cls = InstrClass::IndirectJump;
                    break;
                  case Terminator::Return:
                    instr.cls = InstrClass::Return;
                    break;
                  case Terminator::FallThrough:
                    break;  // unreachable: hasBranchInstr() is false
                }
            } else if (callee_at[slot] != kNoProc) {
                instr.cls = InstrClass::Call;
                instr.callee = callee_at[slot];
            }
            instrs.push_back(instr);
        }

        if (bl.jumpInserted) {
            LayoutInstr jump;
            jump.cls = InstrClass::Jump;
            jump.wordAddr = bl.jumpAddr;
            jump.proc = proc.id();
            jump.block = id;
            // The inserted jump reaches the successor the realization
            // displaced: the fall-through edge for FallThrough blocks and
            // NeitherJumpToFall, the taken edge for NeitherJumpToTaken.
            if (block.term == Terminator::CondBranch) {
                jump.targetBlock = edgeDst(
                    proc, id,
                    bl.cond == CondRealization::NeitherJumpToTaken
                        ? EdgeKind::Taken
                        : EdgeKind::FallThrough);
            } else {
                jump.targetBlock = edgeDst(proc, id, EdgeKind::FallThrough);
            }
            instrs.push_back(jump);
        }
    }
    return instrs;
}

std::vector<LayoutInstr>
enumerateProgramInstrs(const Program &program, const ProgramLayout &layout)
{
    std::vector<LayoutInstr> instrs;
    instrs.reserve(layout.totalInstrs);
    for (const auto &proc : program.procs()) {
        auto proc_instrs =
            enumerateProcInstrs(proc, layout.procs[proc.id()]);
        instrs.insert(instrs.end(), proc_instrs.begin(), proc_instrs.end());
    }
    return instrs;
}

namespace {

/// Direction hint from layout order positions (used before addresses
/// exist: a target laid out earlier will be a backward branch).
DirHint
orderDir(std::uint32_t target_pos, std::uint32_t branch_pos)
{
    return target_pos <= branch_pos ? DirHint::Backward : DirHint::Forward;
}

}  // namespace

ProcLayout
materializeProc(const Procedure &proc, std::vector<BlockId> order, Addr base,
                const MaterializeOptions &options)
{
    const std::size_t n = proc.numBlocks();
    if (order.size() != n)
        panic("materializeProc(%s): order has %zu of %zu blocks",
              proc.name().c_str(), order.size(), n);
    if (!order.empty() && order.front() != proc.entry())
        panic("materializeProc(%s): order must start with the entry block",
              proc.name().c_str());

    ProcLayout layout;
    layout.base = base;
    layout.blocks.resize(n);
    layout.order = std::move(order);

    // Position of each block in the layout.
    std::vector<std::uint32_t> position(n, 0);
    for (std::uint32_t i = 0; i < layout.order.size(); ++i) {
        const BlockId id = layout.order[i];
        if (id >= n)
            panic("materializeProc: block %u out of range", id);
        position[id] = i;
        layout.blocks[id].orderIndex = i;
    }
    // Detect duplicates: positions must be a permutation.
    {
        std::vector<bool> seen(n, false);
        for (BlockId id : layout.order) {
            if (seen[id])
                panic("materializeProc: block %u appears twice", id);
            seen[id] = true;
        }
    }

    // Pass 1: decide realizations and sizes.
    for (std::uint32_t i = 0; i < layout.order.size(); ++i) {
        const BlockId id = layout.order[i];
        const BasicBlock &block = proc.block(id);
        BlockLayout &bl = layout.blocks[id];
        const BlockId next =
            i + 1 < layout.order.size() ? layout.order[i + 1] : kNoBlock;

        bl.finalInstrs = block.numInstrs;
        bl.baseInstrs = block.numInstrs;

        switch (block.term) {
          case Terminator::CondBranch: {
            const auto taken_index =
                static_cast<std::uint32_t>(proc.takenEdge(id));
            const auto fall_index =
                static_cast<std::uint32_t>(proc.fallThroughEdge(id));
            const Edge &taken = proc.edge(taken_index);
            const Edge &fall = proc.edge(fall_index);
            const DirHint dir_taken = orderDir(position[taken.dst], i);
            const DirHint dir_fall = orderDir(position[fall.dst], i);

            CondRealization pick;
            if (options.costModel != nullptr) {
                // Consider every legal realization and take the cheapest.
                const CostModel &model = *options.costModel;
                std::vector<CondRealization> candidates = {
                    CondRealization::NeitherJumpToFall,
                    CondRealization::NeitherJumpToTaken,
                };
                if (next == fall.dst)
                    candidates.push_back(CondRealization::FallAdjacent);
                if (next == taken.dst)
                    candidates.push_back(CondRealization::TakenAdjacent);
                pick = candidates.front();
                double best = model.condRealizationCost(
                    taken.weight, fall.weight, pick, dir_taken, dir_fall);
                for (std::size_t c = 1; c < candidates.size(); ++c) {
                    const double cost = model.condRealizationCost(
                        taken.weight, fall.weight, candidates[c], dir_taken,
                        dir_fall);
                    // Prefer adjacency on ties: adjacency candidates come
                    // later in the list, so use <=.
                    if (cost <= best) {
                        best = cost;
                        pick = candidates[c];
                    }
                }
            } else {
                // Classic behavior: use adjacency when available (fall
                // first), else keep the sense and jump to the fall-through
                // successor.
                if (next == fall.dst)
                    pick = CondRealization::FallAdjacent;
                else if (next == taken.dst)
                    pick = CondRealization::TakenAdjacent;
                else
                    pick = CondRealization::NeitherJumpToFall;
            }

            bl.cond = pick;
            if (pick == CondRealization::NeitherJumpToFall ||
                pick == CondRealization::NeitherJumpToTaken) {
                bl.jumpInserted = true;
                bl.finalInstrs = block.numInstrs + 1;
                ++layout.jumpsInserted;
            }
            if (pick == CondRealization::TakenAdjacent ||
                pick == CondRealization::NeitherJumpToTaken) {
                ++layout.sensesInverted;
            }
            break;
          }
          case Terminator::UncondBranch: {
            const auto taken_index =
                static_cast<std::uint32_t>(proc.takenEdge(id));
            if (proc.edge(taken_index).dst == next) {
                bl.jumpRemoved = true;
                bl.finalInstrs = block.numInstrs - 1;
                bl.baseInstrs = block.numInstrs - 1;
                ++layout.jumpsRemoved;
            }
            break;
          }
          case Terminator::FallThrough: {
            const std::int64_t fall_index = proc.fallThroughEdge(id);
            if (fall_index >= 0 && proc.edge(fall_index).dst != next) {
                bl.jumpInserted = true;
                bl.finalInstrs = block.numInstrs + 1;
                ++layout.jumpsInserted;
            }
            break;
          }
          case Terminator::IndirectJump:
          case Terminator::Return:
            break;
        }
    }

    // Pass 2: assign addresses.
    Addr addr = base;
    for (BlockId id : layout.order) {
        const BasicBlock &block = proc.block(id);
        BlockLayout &bl = layout.blocks[id];
        bl.addr = addr;
        if (block.hasBranchInstr() && !bl.jumpRemoved)
            bl.branchAddr = addr + block.numInstrs - 1;
        if (bl.jumpInserted)
            bl.jumpAddr = addr + block.numInstrs;
        addr += bl.finalInstrs;
    }
    layout.totalInstrs = addr - base;
    return layout;
}

void
rebaseProcLayout(ProcLayout &proc, Addr base)
{
    if (proc.base == base)
        return;
    const std::int64_t delta = static_cast<std::int64_t>(base) -
                               static_cast<std::int64_t>(proc.base);
    auto shift = [delta](Addr &addr) {
        if (addr != kNoAddr)
            addr = static_cast<Addr>(static_cast<std::int64_t>(addr) + delta);
    };
    for (BlockLayout &block : proc.blocks) {
        shift(block.addr);
        shift(block.branchAddr);
        shift(block.jumpAddr);
    }
    proc.base = base;
}

ProgramLayout
materializeProgram(const Program &program,
                   const std::vector<std::vector<BlockId>> &orders,
                   const MaterializeOptions &options)
{
    if (orders.size() != program.numProcs())
        panic("materializeProgram: %zu orders for %zu procedures",
              orders.size(), program.numProcs());
    ProgramLayout layout;
    layout.procs.reserve(program.numProcs());
    Addr base = 0;
    for (ProcId id = 0; id < program.numProcs(); ++id) {
        layout.procs.push_back(
            materializeProc(program.proc(id), orders[id], base, options));
        base += layout.procs.back().totalInstrs;
    }
    layout.totalInstrs = base;
    return layout;
}

ProgramLayout
originalLayout(const Program &program)
{
    std::vector<std::vector<BlockId>> orders;
    orders.reserve(program.numProcs());
    for (const auto &proc : program.procs()) {
        std::vector<BlockId> order(proc.numBlocks());
        for (BlockId b = 0; b < proc.numBlocks(); ++b)
            order[b] = b;
        orders.push_back(std::move(order));
    }
    return materializeProgram(program, orders, MaterializeOptions{});
}

}  // namespace balign
