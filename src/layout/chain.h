/**
 * @file
 * Pettis–Hansen chains: disjoint simple paths of basic blocks linked by
 * realized fall-through edges.
 *
 * A chain link S -> D means D will be laid out immediately after S, so the
 * CFG edge S -> D is realized as a fall-through. Links may only be created
 * when S has no successor link, D has no predecessor link, D is not the
 * procedure entry (the entry must stay first in its procedure), and S and D
 * are not already in the same chain (which would close a cycle).
 *
 * All operations are O(1): each chain's head block knows its tail and vice
 * versa. The set supports undoable links (strict LIFO order) so the Try15
 * aligner can backtrack over candidate link subsets without copying state.
 */

#ifndef BALIGN_LAYOUT_CHAIN_H
#define BALIGN_LAYOUT_CHAIN_H

#include <cstdint>
#include <vector>

#include "support/types.h"

namespace balign {

class ChainSet
{
  public:
    /**
     * @param num_blocks number of blocks; each starts as its own chain
     * @param entry the procedure entry block (may never acquire a
     *        predecessor link)
     */
    explicit ChainSet(std::size_t num_blocks, BlockId entry = 0);

    std::size_t numBlocks() const { return next_.size(); }
    BlockId entry() const { return entry_; }

    /// The linked layout successor of @p block, or kNoBlock.
    BlockId next(BlockId block) const { return next_[block]; }

    /// The linked layout predecessor of @p block, or kNoBlock.
    BlockId prev(BlockId block) const { return prev_[block]; }

    /// Whether link(src, dst) would succeed.
    bool canLink(BlockId src, BlockId dst) const;

    /**
     * Links dst directly after src. Returns false (and changes nothing) if
     * the link is not allowed.
     */
    bool link(BlockId src, BlockId dst);

    /**
     * Undoes a link previously created with link(). Undo must proceed in
     * strict LIFO order with respect to intervening link() calls; the Try15
     * backtracking search guarantees this.
     */
    void unlink(BlockId src, BlockId dst);

    /// Head (first block) of the chain containing @p block. O(1) when
    /// @p block is a chain endpoint, O(length) otherwise.
    BlockId head(BlockId block) const;

    /// Tail (last block) of the chain containing @p block.
    BlockId tail(BlockId block) const;

    /// True if @p a and @p b are in the same chain.
    bool sameChain(BlockId a, BlockId b) const;

    /// Number of links currently in effect.
    std::size_t numLinks() const { return links_; }

    /**
     * Materializes all chains as block lists, each ordered head to tail,
     * in order of their head block's id (callers reorder via chain_order.h).
     */
    std::vector<std::vector<BlockId>> chains() const;

  private:
    BlockId entry_;
    std::vector<BlockId> next_;
    std::vector<BlockId> prev_;
    /// head_[b]: head of b's chain; authoritative only when b is a tail.
    std::vector<BlockId> head_;
    /// tail_[b]: tail of b's chain; authoritative only when b is a head.
    std::vector<BlockId> tail_;
    std::size_t links_ = 0;
};

}  // namespace balign

#endif  // BALIGN_LAYOUT_CHAIN_H
