/**
 * @file
 * Materializer: turns a block order into a concrete binary layout,
 * performing the OM-style transformations the paper applies — inverting
 * branch senses, inserting unconditional jumps where a needed fall-through
 * path is not layout-adjacent, and deleting unconditional branches whose
 * targets become adjacent.
 *
 * When given an architecture cost model, the materializer picks the
 * cheapest legal realization per conditional block, which implements the
 * paper's "align neither edge" loop transformation (a hot taken branch is
 * replaced by a correctly predicted not-taken branch plus a jump). Without
 * a cost model it behaves classically (keep sense, jump to the fall-through
 * successor), matching the Pettis–Hansen Greedy baseline.
 */

#ifndef BALIGN_LAYOUT_MATERIALIZE_H
#define BALIGN_LAYOUT_MATERIALIZE_H

#include <vector>

#include "bpred/cost_model.h"
#include "layout/layout_result.h"

namespace balign {

struct MaterializeOptions
{
    /// Architecture cost model; null selects classic (cost-blind) behavior.
    const CostModel *costModel = nullptr;
};

/**
 * Materializes one procedure.
 *
 * @param proc the procedure
 * @param order permutation of all block ids; order[0] must be the entry
 * @param base program-global address of the procedure's first instruction
 */
ProcLayout materializeProc(const Procedure &proc,
                           std::vector<BlockId> order, Addr base,
                           const MaterializeOptions &options = {});

/**
 * Materializes a whole program; procedures are placed contiguously in id
 * order (the paper does not reorder procedures).
 *
 * @param orders one block order per procedure
 */
ProgramLayout materializeProgram(const Program &program,
                                 const std::vector<std::vector<BlockId>> &orders,
                                 const MaterializeOptions &options = {});

/**
 * The identity layout: blocks in id order, exactly reproducing the original
 * binary (requires the CFG invariant that fall-through edges target the
 * next block id; see cfg/validate.h).
 */
ProgramLayout originalLayout(const Program &program);

/// Outcome of traversing a given CFG edge kind out of a conditional block.
struct CondOutcome
{
    bool branchTaken;   ///< the realized conditional branch was taken
    bool jumpExecuted;  ///< the inserted trailing jump also executed
};

/// Maps a CFG edge kind through a realization.
CondOutcome condOutcome(CondRealization realization, EdgeKind kind);

/// Which CFG edge kind the realized conditional branch *targets* (the
/// other kind is reached by falling through, possibly via the inserted
/// jump).
EdgeKind branchTargetKind(CondRealization realization);

/**
 * Enumerates every instruction slot of @p layout in address order: body
 * and call slots first, the realized terminator (if it occupies a slot),
 * then the inserted trailing jump (if any). The result covers exactly
 * BlockLayout::finalInstrs slots per block, with targetBlock resolved
 * through the realization (branchTargetKind for conditional branches,
 * the displaced successor for inserted jumps). This is the ground truth
 * the emit backend's relaxation pass sizes and the verifier's relaxed
 * obligations check against.
 */
std::vector<LayoutInstr> enumerateProcInstrs(const Procedure &proc,
                                             const ProcLayout &layout);

/// Program-wide enumeration: procedures in id order (their placement
/// order), concatenated.
std::vector<LayoutInstr> enumerateProgramInstrs(const Program &program,
                                                const ProgramLayout &layout);

}  // namespace balign

#endif  // BALIGN_LAYOUT_MATERIALIZE_H
