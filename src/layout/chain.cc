#include "layout/chain.h"

#include "support/log.h"

namespace balign {

ChainSet::ChainSet(std::size_t num_blocks, BlockId entry)
    : entry_(entry),
      next_(num_blocks, kNoBlock),
      prev_(num_blocks, kNoBlock),
      head_(num_blocks),
      tail_(num_blocks)
{
    if (entry >= num_blocks && num_blocks > 0)
        panic("ChainSet: entry %u out of range", entry);
    for (std::size_t i = 0; i < num_blocks; ++i) {
        head_[i] = static_cast<BlockId>(i);
        tail_[i] = static_cast<BlockId>(i);
    }
}

bool
ChainSet::canLink(BlockId src, BlockId dst) const
{
    if (src >= next_.size() || dst >= next_.size())
        return false;
    if (src == dst)
        return false;
    if (dst == entry_)
        return false;  // the entry block must remain a chain head
    if (next_[src] != kNoBlock)
        return false;  // src already has a layout successor
    if (prev_[dst] != kNoBlock)
        return false;  // dst already has a layout predecessor
    if (head_[src] == dst)
        return false;  // would close a cycle
    return true;
}

bool
ChainSet::link(BlockId src, BlockId dst)
{
    if (!canLink(src, dst))
        return false;
    const BlockId chain_head = head_[src];   // src is a tail: authoritative
    const BlockId chain_tail = tail_[dst];   // dst is a head: authoritative
    next_[src] = dst;
    prev_[dst] = src;
    head_[chain_tail] = chain_head;
    tail_[chain_head] = chain_tail;
    ++links_;
    return true;
}

void
ChainSet::unlink(BlockId src, BlockId dst)
{
    if (next_[src] != dst || prev_[dst] != src)
        panic("unlink(%u,%u): not linked", src, dst);
    next_[src] = kNoBlock;
    prev_[dst] = kNoBlock;
    // head_[src] and tail_[dst] were untouched by the link (LIFO contract),
    // so they still describe the split chains; restore the endpoints.
    tail_[head_[src]] = src;
    head_[tail_[dst]] = dst;
    --links_;
}

BlockId
ChainSet::head(BlockId block) const
{
    if (next_[block] == kNoBlock)
        return head_[block];  // endpoint: O(1)
    BlockId cur = block;
    while (prev_[cur] != kNoBlock)
        cur = prev_[cur];
    return cur;
}

BlockId
ChainSet::tail(BlockId block) const
{
    if (prev_[block] == kNoBlock)
        return tail_[block];  // endpoint: O(1)
    BlockId cur = block;
    while (next_[cur] != kNoBlock)
        cur = next_[cur];
    return cur;
}

bool
ChainSet::sameChain(BlockId a, BlockId b) const
{
    return head(a) == head(b);
}

std::vector<std::vector<BlockId>>
ChainSet::chains() const
{
    std::vector<std::vector<BlockId>> result;
    for (BlockId b = 0; b < next_.size(); ++b) {
        if (prev_[b] != kNoBlock)
            continue;  // not a head
        std::vector<BlockId> chain;
        for (BlockId cur = b; cur != kNoBlock; cur = next_[cur])
            chain.push_back(cur);
        result.push_back(std::move(chain));
    }
    return result;
}

}  // namespace balign
