/**
 * @file
 * Concrete layout of a program: block order, final addresses, and the
 * binary transformations applied (sense inversions, inserted and removed
 * unconditional jumps) — the output the paper produced with OM.
 */

#ifndef BALIGN_LAYOUT_LAYOUT_RESULT_H
#define BALIGN_LAYOUT_LAYOUT_RESULT_H

#include <vector>

#include "cfg/program.h"
#include "layout/realization.h"
#include "support/types.h"

namespace balign {

/**
 * Class of one laid-out instruction slot, the granularity at which the
 * emit backend (src/emit/) assigns encodings and byte sizes. Every slot
 * the materializer accounts for in BlockLayout::finalInstrs maps to
 * exactly one of these.
 */
enum class InstrClass : std::uint8_t {
    Body,          ///< straight-line instruction (no control transfer)
    Call,          ///< procedure call (embedded CallSite)
    CondBranch,    ///< realized conditional branch terminator
    Jump,          ///< unconditional jump (kept terminator or inserted)
    IndirectJump,  ///< computed-jump terminator
    Return,        ///< return terminator
};

/// Printable name of an instruction class.
const char *instrClassName(InstrClass cls);

/**
 * One instruction slot of a realized layout, in address order. This is
 * the per-instruction size-accounting record: the word-model address of
 * the slot plus everything an encoder needs to size and target it (the
 * branch's destination block, or a call's callee).
 */
struct LayoutInstr
{
    InstrClass cls = InstrClass::Body;

    /// Program-global instruction-word address of the slot.
    Addr wordAddr = kNoAddr;

    /// Owning procedure and block.
    ProcId proc = kNoProc;
    BlockId block = kNoBlock;

    /// For CondBranch/Jump: destination block (same procedure). kNoBlock
    /// for classes without an intra-procedure target.
    BlockId targetBlock = kNoBlock;

    /// For Call: the callee procedure.
    ProcId callee = kNoProc;
};

/**
 * Per-block placement and transformation record.
 *
 * Address fields are program-global instruction-word addresses (procedure
 * base already applied).
 */
struct BlockLayout
{
    /// Start address of the block.
    Addr addr = kNoAddr;

    /// Position of the block in its procedure's layout order.
    std::uint32_t orderIndex = 0;

    /// Static size in instruction words after transformation.
    std::uint32_t finalInstrs = 0;

    /// Instructions that execute on EVERY activation of the block
    /// (excludes an inserted trailing jump, which only executes when its
    /// path is taken).
    std::uint32_t baseInstrs = 0;

    /// For CondBranch blocks: how the two successors are realized.
    CondRealization cond = CondRealization::FallAdjacent;

    /// True when a trailing unconditional jump was inserted (fall-through
    /// blocks with non-adjacent successors; both "Neither" realizations).
    bool jumpInserted = false;

    /// True when an UncondBranch block's jump was deleted because its
    /// target became layout-adjacent.
    bool jumpRemoved = false;

    /// Address of the block's terminator branch instruction, if any.
    Addr branchAddr = kNoAddr;

    /// Address of the inserted trailing jump, if any.
    Addr jumpAddr = kNoAddr;
};

/// Layout of one procedure.
struct ProcLayout
{
    /// Blocks in final layout order.
    std::vector<BlockId> order;

    /// Per-block records, indexed by BlockId.
    std::vector<BlockLayout> blocks;

    /// Program-global base address of the procedure.
    Addr base = 0;

    /// Static size (instruction words) after transformation.
    std::uint64_t totalInstrs = 0;

    /// Counts of applied transformations.
    std::uint32_t jumpsInserted = 0;
    std::uint32_t jumpsRemoved = 0;
    std::uint32_t sensesInverted = 0;
};

/**
 * Re-bases @p proc at @p base: every program-global address shifts by the
 * same delta (addresses within a procedure are contiguous, so a layout is
 * position-independent modulo this shift). Used by the per-procedure
 * fallback splice in align_program.cc and by incremental realignment.
 */
void rebaseProcLayout(ProcLayout &proc, Addr base);

/// Layout of a whole program (procedures in id order, placed contiguously).
struct ProgramLayout
{
    std::vector<ProcLayout> procs;
    std::uint64_t totalInstrs = 0;

    const ProcLayout &proc(ProcId id) const { return procs[id]; }

    /// Entry address of a procedure (its entry block's address).
    Addr
    procEntryAddr(ProcId id) const
    {
        return procs[id].blocks[procs[id].order.front()].addr;
    }
};

}  // namespace balign

#endif  // BALIGN_LAYOUT_LAYOUT_RESULT_H
