/**
 * @file
 * Concrete layout of a program: block order, final addresses, and the
 * binary transformations applied (sense inversions, inserted and removed
 * unconditional jumps) — the output the paper produced with OM.
 */

#ifndef BALIGN_LAYOUT_LAYOUT_RESULT_H
#define BALIGN_LAYOUT_LAYOUT_RESULT_H

#include <vector>

#include "cfg/program.h"
#include "layout/realization.h"
#include "support/types.h"

namespace balign {

/**
 * Per-block placement and transformation record.
 *
 * Address fields are program-global instruction-word addresses (procedure
 * base already applied).
 */
struct BlockLayout
{
    /// Start address of the block.
    Addr addr = kNoAddr;

    /// Position of the block in its procedure's layout order.
    std::uint32_t orderIndex = 0;

    /// Static size in instruction words after transformation.
    std::uint32_t finalInstrs = 0;

    /// Instructions that execute on EVERY activation of the block
    /// (excludes an inserted trailing jump, which only executes when its
    /// path is taken).
    std::uint32_t baseInstrs = 0;

    /// For CondBranch blocks: how the two successors are realized.
    CondRealization cond = CondRealization::FallAdjacent;

    /// True when a trailing unconditional jump was inserted (fall-through
    /// blocks with non-adjacent successors; both "Neither" realizations).
    bool jumpInserted = false;

    /// True when an UncondBranch block's jump was deleted because its
    /// target became layout-adjacent.
    bool jumpRemoved = false;

    /// Address of the block's terminator branch instruction, if any.
    Addr branchAddr = kNoAddr;

    /// Address of the inserted trailing jump, if any.
    Addr jumpAddr = kNoAddr;
};

/// Layout of one procedure.
struct ProcLayout
{
    /// Blocks in final layout order.
    std::vector<BlockId> order;

    /// Per-block records, indexed by BlockId.
    std::vector<BlockLayout> blocks;

    /// Program-global base address of the procedure.
    Addr base = 0;

    /// Static size (instruction words) after transformation.
    std::uint64_t totalInstrs = 0;

    /// Counts of applied transformations.
    std::uint32_t jumpsInserted = 0;
    std::uint32_t jumpsRemoved = 0;
    std::uint32_t sensesInverted = 0;
};

/**
 * Re-bases @p proc at @p base: every program-global address shifts by the
 * same delta (addresses within a procedure are contiguous, so a layout is
 * position-independent modulo this shift). Used by the per-procedure
 * fallback splice in align_program.cc and by incremental realignment.
 */
void rebaseProcLayout(ProcLayout &proc, Addr base);

/// Layout of a whole program (procedures in id order, placed contiguously).
struct ProgramLayout
{
    std::vector<ProcLayout> procs;
    std::uint64_t totalInstrs = 0;

    const ProcLayout &proc(ProcId id) const { return procs[id]; }

    /// Entry address of a procedure (its entry block's address).
    Addr
    procEntryAddr(ProcId id) const
    {
        return procs[id].blocks[procs[id].order.front()].addr;
    }
};

}  // namespace balign

#endif  // BALIGN_LAYOUT_LAYOUT_RESULT_H
