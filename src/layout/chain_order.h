/**
 * @file
 * Chain ordering policies (paper §6.1).
 *
 * After chains are formed, they must be concatenated into the final block
 * order. The paper implemented two policies in OM:
 *
 *  - HotFirst: chains ordered from most to least frequently executed. The
 *    paper found this slightly better overall (it satisfies many BT/FNT
 *    precedences anyway and improves locality), and used it for all
 *    simulations except the BT/FNT one.
 *
 *  - BtFntPrecedence: the Pettis–Hansen precedence ordering. Each
 *    frequently-taken conditional edge between chains votes for its target
 *    chain to be placed before its source chain (so the realized branch is
 *    backward and BT/FNT predicts it taken); each rarely-taken edge votes
 *    the other way. Votes are applied in decreasing weight order when they
 *    do not create a cycle; the result is topologically sorted.
 *
 * The entry block's chain is always placed first.
 */

#ifndef BALIGN_LAYOUT_CHAIN_ORDER_H
#define BALIGN_LAYOUT_CHAIN_ORDER_H

#include <vector>

#include "cfg/procedure.h"
#include "layout/chain.h"

namespace balign {

enum class ChainOrderPolicy : std::uint8_t {
    HotFirst,
    BtFntPrecedence,
};

/// Printable policy name.
const char *chainOrderPolicyName(ChainOrderPolicy policy);

/**
 * Produces the final block order for @p proc from the chains in @p chains,
 * using the given policy. The chain containing the entry block comes first.
 */
std::vector<BlockId> orderChains(const Procedure &proc,
                                 const ChainSet &chains,
                                 ChainOrderPolicy policy);

}  // namespace balign

#endif  // BALIGN_LAYOUT_CHAIN_ORDER_H
