/**
 * @file
 * layout.* rules: legality of one concrete ProgramLayout against its CFG.
 *
 * Everything is re-derived from the CFG and the layout's per-block
 * decisions; the materializer's arithmetic is not trusted (the same
 * stance the dynamic oracle takes, but without replaying any trace).
 * Checks are layered so one corruption yields one finding: a broken
 * permutation skips the address walk for that procedure, and size
 * arithmetic is checked against the layout's OWN transformation flags
 * while the flags themselves are checked against the CFG separately.
 */

#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

#include "analysis/analysis.h"
#include "emit/relax.h"
#include "layout/materialize.h"
#include "lint/emit.h"
#include "lint/rules.h"

namespace balign {

namespace {

using lint_detail::emit;

/// Sets arch/aligner context on every diagnostic appended by @p fn.
template <typename Fn>
void
withContext(std::vector<Diagnostic> &sink, const std::string &arch,
            const std::string &aligner, Fn &&fn)
{
    const std::size_t first = sink.size();
    fn();
    for (std::size_t i = first; i < sink.size(); ++i) {
        sink[i].arch = arch;
        sink[i].aligner = aligner;
    }
}

/// Checks order/permutation integrity. Returns false when the order is too
/// broken for a meaningful address walk.
bool
lintPermutation(const Procedure &proc, const ProcLayout &layout,
                std::vector<Diagnostic> &sink)
{
    const ProcId pid = proc.id();
    bool walkable = true;

    if (layout.blocks.size() != proc.numBlocks()) {
        std::ostringstream msg;
        msg << "layout has " << layout.blocks.size()
            << " block records for a " << proc.numBlocks()
            << "-block procedure";
        emit(sink, "layout.permutation", {pid, kNoBlock, kNoEdge},
             msg.str(), "one BlockLayout per CFG block, indexed by id");
        return false;
    }
    if (layout.order.size() != proc.numBlocks()) {
        std::ostringstream msg;
        msg << "layout order lists " << layout.order.size() << " of "
            << proc.numBlocks() << " blocks";
        emit(sink, "layout.permutation", {pid, kNoBlock, kNoEdge},
             msg.str(),
             "the order must mention every block exactly once");
        walkable = false;
    }

    std::vector<unsigned> seen(proc.numBlocks(), 0);
    for (const BlockId id : layout.order) {
        if (id >= proc.numBlocks()) {
            std::ostringstream msg;
            msg << "layout order names block " << id
                << ", outside the " << proc.numBlocks()
                << "-block procedure";
            emit(sink, "layout.permutation", {pid, kNoBlock, kNoEdge},
                 msg.str(), "orders may only permute existing blocks");
            return false;
        }
        ++seen[id];
    }
    for (BlockId id = 0; id < proc.numBlocks(); ++id) {
        if (seen[id] == 1)
            continue;
        std::ostringstream msg;
        msg << "block appears " << seen[id] << " times in the layout order";
        emit(sink, "layout.permutation", {pid, id, kNoEdge}, msg.str(),
             "the order must be a permutation: every block exactly once");
        walkable = false;
    }
    if (!walkable)
        return false;

    for (std::uint32_t i = 0; i < layout.order.size(); ++i) {
        const BlockId id = layout.order[i];
        if (layout.blocks[id].orderIndex != i) {
            std::ostringstream msg;
            msg << "orderIndex " << layout.blocks[id].orderIndex
                << " disagrees with the block's position " << i
                << " in the order";
            emit(sink, "layout.permutation", {pid, id, kNoEdge}, msg.str(),
                 "orderIndex caches the position and must match it");
        }
    }

    if (!layout.order.empty() && layout.order.front() != proc.entry()) {
        std::ostringstream msg;
        msg << "layout starts with block " << layout.order.front()
            << " but the procedure entry is block " << proc.entry();
        emit(sink, "layout.entry-first", {pid, layout.order.front(),
             kNoEdge}, msg.str(),
             "the entry block must stay first: callers jump to the "
             "procedure's first address");
    }
    return true;
}

/// Checks the transformation flags and conditional realization against the
/// CFG and layout adjacency.
void
lintTransformFlags(const Procedure &proc, const ProcLayout &layout,
                   std::vector<Diagnostic> &sink)
{
    const ProcId pid = proc.id();
    for (std::uint32_t i = 0; i < layout.order.size(); ++i) {
        const BlockId id = layout.order[i];
        const BasicBlock &block = proc.block(id);
        const BlockLayout &bl = layout.blocks[id];
        const BlockId next =
            i + 1 < layout.order.size() ? layout.order[i + 1] : kNoBlock;

        switch (block.term) {
          case Terminator::CondBranch: {
            const std::int64_t taken_index = proc.takenEdge(id);
            const std::int64_t fall_index = proc.fallThroughEdge(id);
            if (taken_index < 0 || fall_index < 0)
                break;  // malformed CFG: cfg.terminator-arity reports it
            const BlockId taken_dst =
                proc.edge(static_cast<std::uint32_t>(taken_index)).dst;
            const BlockId fall_dst =
                proc.edge(static_cast<std::uint32_t>(fall_index)).dst;

            const bool needs_jump =
                bl.cond == CondRealization::NeitherJumpToFall ||
                bl.cond == CondRealization::NeitherJumpToTaken;
            if (bl.cond == CondRealization::FallAdjacent &&
                fall_dst != next) {
                std::ostringstream msg;
                msg << "realized FallAdjacent but the fall-through "
                       "successor " << fall_dst
                    << " is not the next block in layout";
                emit(sink, "layout.branch-polarity", {pid, id, kNoEdge},
                     msg.str(),
                     "branch polarity must agree with layout order: the "
                     "not-taken path has to reach the adjacent block");
            }
            if (bl.cond == CondRealization::TakenAdjacent &&
                taken_dst != next) {
                std::ostringstream msg;
                msg << "realized TakenAdjacent but the taken successor "
                    << taken_dst << " is not the next block in layout";
                emit(sink, "layout.branch-polarity", {pid, id, kNoEdge},
                     msg.str(),
                     "inverting the sense is only legal when the CFG "
                     "taken successor is layout-adjacent");
            }
            if (bl.jumpInserted != needs_jump) {
                std::ostringstream msg;
                msg << condRealizationName(bl.cond)
                    << (needs_jump
                            ? " requires an inserted trailing jump"
                            : " must not insert a trailing jump")
                    << " but jumpInserted is "
                    << (bl.jumpInserted ? "true" : "false");
                emit(sink, "layout.branch-polarity", {pid, id, kNoEdge},
                     msg.str(),
                     "both Neither realizations reach the non-branch "
                     "successor through an inserted jump; the adjacent "
                     "realizations never do");
            }
            if (bl.jumpRemoved) {
                emit(sink, "layout.branch-polarity", {pid, id, kNoEdge},
                     "conditional block marked jumpRemoved",
                     "only unconditional branches to adjacent targets "
                     "can be deleted");
            }
            break;
          }
          case Terminator::UncondBranch: {
            const std::int64_t taken_index = proc.takenEdge(id);
            if (taken_index < 0)
                break;
            const BlockId taken_dst =
                proc.edge(static_cast<std::uint32_t>(taken_index)).dst;
            const bool adjacent = taken_dst == next;
            if (bl.jumpRemoved != adjacent) {
                std::ostringstream msg;
                msg << "unconditional branch to block " << taken_dst
                    << (adjacent
                            ? " is layout-adjacent but was not removed"
                            : " is not layout-adjacent yet was removed");
                emit(sink, "layout.jump-needed", {pid, id, kNoEdge},
                     msg.str(),
                     "delete the jump exactly when its target follows "
                     "immediately in layout");
            }
            if (bl.jumpInserted) {
                emit(sink, "layout.jump-needed", {pid, id, kNoEdge},
                     "unconditional block marked jumpInserted",
                     "unconditional blocks already end in a jump; "
                     "nothing can be inserted");
            }
            break;
          }
          case Terminator::FallThrough: {
            const std::int64_t fall_index = proc.fallThroughEdge(id);
            const BlockId fall_dst =
                fall_index < 0
                    ? kNoBlock
                    : proc.edge(static_cast<std::uint32_t>(fall_index)).dst;
            const bool needs_jump =
                fall_index >= 0 && fall_dst != next;
            if (bl.jumpInserted != needs_jump) {
                std::ostringstream msg;
                if (needs_jump) {
                    msg << "fall-through successor " << fall_dst
                        << " is not layout-adjacent but no jump was "
                           "inserted";
                } else {
                    msg << "inserted jump is unnecessary: the block "
                        << (fall_index < 0 ? "has no successor"
                                           : "falls into the next block");
                }
                emit(sink, "layout.jump-needed", {pid, id, kNoEdge},
                     msg.str(),
                     "insert a jump exactly when a needed fall-through "
                     "path is not layout-adjacent");
            }
            if (bl.jumpRemoved) {
                emit(sink, "layout.jump-needed", {pid, id, kNoEdge},
                     "fall-through block marked jumpRemoved",
                     "there is no branch instruction to delete");
            }
            break;
          }
          case Terminator::IndirectJump:
          case Terminator::Return:
            if (bl.jumpInserted || bl.jumpRemoved) {
                std::ostringstream msg;
                msg << terminatorName(block.term)
                    << " block marked jumpInserted/jumpRemoved";
                emit(sink, "layout.jump-needed", {pid, id, kNoEdge},
                     msg.str(),
                     "indirect jumps and returns are never transformed");
            }
            break;
        }
    }
}

/// Walks the order re-deriving addresses and sizes from the CFG plus the
/// layout's own transformation flags.
void
lintAddresses(const Procedure &proc, const ProcLayout &layout,
              std::vector<Diagnostic> &sink)
{
    const ProcId pid = proc.id();
    Addr addr = layout.base;
    for (const BlockId id : layout.order) {
        const BasicBlock &block = proc.block(id);
        const BlockLayout &bl = layout.blocks[id];

        const std::uint32_t expect_base =
            block.numInstrs - (bl.jumpRemoved ? 1 : 0);
        const std::uint32_t expect_final =
            expect_base + (bl.jumpInserted ? 1 : 0);
        if (bl.baseInstrs != expect_base || bl.finalInstrs != expect_final) {
            std::ostringstream msg;
            msg << "block sizes disagree with its flags: base="
                << bl.baseInstrs << "/final=" << bl.finalInstrs
                << ", expected base=" << expect_base
                << "/final=" << expect_final << " from " << block.numInstrs
                << " CFG instructions";
            emit(sink, "layout.sizes", {pid, id, kNoEdge}, msg.str(),
                 "final size = CFG size - removed jump + inserted jump");
        }

        if (bl.addr != addr) {
            std::ostringstream msg;
            msg << "block starts at address " << bl.addr
                << " but the gap-free walk of the order expects " << addr;
            emit(sink, "layout.addresses", {pid, id, kNoEdge}, msg.str(),
                 "addresses must be strictly monotone and gap-free in "
                 "layout order");
        }

        const Addr expect_branch =
            block.hasBranchInstr() && !bl.jumpRemoved
                ? bl.addr + block.numInstrs - 1
                : kNoAddr;
        if (bl.branchAddr != expect_branch) {
            std::ostringstream msg;
            msg << "branchAddr " << bl.branchAddr << " should be ";
            if (expect_branch == kNoAddr)
                msg << "unset (no surviving branch instruction)";
            else
                msg << expect_branch << " (last instruction of the block)";
            emit(sink, "layout.sizes", {pid, id, kNoEdge}, msg.str(),
                 "the terminator occupies the block's final CFG slot");
        }
        const Addr expect_jump =
            bl.jumpInserted ? bl.addr + block.numInstrs : kNoAddr;
        if (bl.jumpAddr != expect_jump) {
            std::ostringstream msg;
            msg << "jumpAddr " << bl.jumpAddr << " should be ";
            if (expect_jump == kNoAddr)
                msg << "unset (no inserted jump)";
            else
                msg << expect_jump << " (first slot after the block)";
            emit(sink, "layout.sizes", {pid, id, kNoEdge}, msg.str(),
                 "an inserted jump trails the block it was added to");
        }

        // Advance by the re-derived size so one bad finalInstrs yields one
        // finding instead of cascading down the procedure.
        addr += expect_final;
    }
    if (layout.totalInstrs != addr - layout.base) {
        std::ostringstream msg;
        msg << "procedure totalInstrs " << layout.totalInstrs
            << " disagrees with the sum of block sizes "
            << (addr - layout.base);
        emit(sink, "layout.addresses", {pid, kNoBlock, kNoEdge}, msg.str(),
             "the procedure footprint is the gap-free sum of its blocks");
    }
}

/**
 * layout.loop-split (Note): a hot natural loop whose hot blocks are not
 * one contiguous run of layout slots. Each split costs an extra taken
 * branch or inserted jump per iteration and an i-cache line per entry,
 * which the paper's alignment is precisely meant to avoid — but a split
 * can still be the globally cheaper choice (e.g. sinking a cold side
 * of the body), so this only annotates, never fails.
 */
void
lintLoopSplit(const Procedure &proc, const ProcLayout &layout,
              const LintOptions &options, std::vector<Diagnostic> &sink)
{
    const ProcAnalysis analysis = ProcAnalysis::of(proc);
    for (const NaturalLoop &loop : analysis.loops.loops) {
        // Heat = how often the loop actually iterates (back-edge weight).
        Weight back_weight = 0;
        for (const BlockId latch : loop.latches) {
            for (const std::uint32_t index : proc.block(latch).outEdges) {
                if (index < proc.numEdges() &&
                    proc.edge(index).dst == loop.header)
                    back_weight += proc.edge(index).weight;
            }
        }
        if (back_weight < options.hotLoopWeight)
            continue;

        // Hot blocks: executed at least 1/8th as often as the loop
        // iterates. Cold exits and error paths inside the body may be
        // laid out far away without penalty.
        std::uint32_t lo = std::numeric_limits<std::uint32_t>::max();
        std::uint32_t hi = 0;
        std::size_t hot = 0;
        for (const BlockId id : loop.blocks) {
            Weight in = 0;
            for (const std::uint32_t index : proc.block(id).inEdges) {
                if (index < proc.numEdges())
                    in += proc.edge(index).weight;
            }
            if (in < back_weight / 8 && id != loop.header)
                continue;
            const std::uint32_t slot = layout.blocks[id].orderIndex;
            lo = std::min(lo, slot);
            hi = std::max(hi, slot);
            ++hot;
        }
        if (hot > 0 && hi - lo + 1 > hot) {
            std::ostringstream msg;
            msg << "loop at header " << loop.header << " (depth "
                << loop.depth << ", back-edge weight " << back_weight
                << ") is split: " << hot << " hot block(s) spread over "
                << hi - lo + 1 << " layout slots";
            emit(sink, "layout.loop-split",
                 {proc.id(), loop.header, kNoEdge}, msg.str(),
                 "each split adds a taken branch or jump per iteration; "
                 "check whether the displaced blocks earn their keep");
        }
    }
}

/**
 * layout.reach (Note): a conditional branch whose displacement, at the
 * relaxation fixpoint of the active encoding model, escapes the short
 * form and pays for the near encoding. Like loop-split this only
 * annotates — a far target can be the globally cheaper layout — but it
 * names the distance so the miss is actionable.
 */
void
lintReach(const Procedure &proc, const ProcLayout &layout,
          const LintOptions &options, std::vector<Diagnostic> &sink)
{
    const EncodingModel &model = encodingModel(options.encoding);
    if (!model.relaxable(InstrClass::CondBranch))
        return;  // no short form to escape (fixed-word model)

    // Relaxation assumes coherent per-block slot accounting; when it is
    // broken, layout.sizes already reported and there is nothing
    // meaningful to relax.
    for (const BlockId id : layout.order) {
        const BlockLayout &bl = layout.blocks[id];
        if (bl.finalInstrs != bl.baseInstrs + (bl.jumpInserted ? 1 : 0))
            return;
    }

    const long long short_min = -128, short_max = 127;
    const ProcRelaxation relaxed = relaxProc(proc, layout, model);
    for (const RelaxedInstr &instr : relaxed.instrs) {
        if (instr.cls != InstrClass::CondBranch ||
            instr.form != BranchForm::Near)
            continue;
        std::ostringstream msg;
        msg << "conditional branch at word " << instr.wordAddr
            << " needs the near form: block " << instr.targetBlock
            << " is " << instr.disp << " bytes away under the "
            << model.name() << " model";
        std::ostringstream hint;
        hint << "the short form spans [" << short_min << ", " << short_max
             << "] bytes but this target is " << instr.disp
             << " away; placing the blocks closer (or sinking the code "
                "between them) recovers "
             << model.instrBytes(InstrClass::CondBranch, BranchForm::Near) -
                    model.instrBytes(InstrClass::CondBranch,
                                     BranchForm::Short)
             << " bytes";
        emit(sink, "layout.reach", {proc.id(), instr.block, kNoEdge},
             msg.str(), hint.str());
    }
}

}  // namespace

void
lintLayout(const Program &program, const ProgramLayout &layout,
           const std::string &arch, const std::string &aligner,
           const LintOptions &options, std::vector<Diagnostic> &sink)
{
    withContext(sink, arch, aligner, [&] {
        if (layout.procs.size() != program.numProcs()) {
            std::ostringstream msg;
            msg << "layout has " << layout.procs.size()
                << " procedure records for a " << program.numProcs()
                << "-procedure program";
            emit(sink, "layout.permutation", {}, msg.str(),
                 "one ProcLayout per procedure, in id order");
            return;
        }
        Addr base = 0;
        for (ProcId p = 0; p < program.numProcs(); ++p) {
            const Procedure &proc = program.proc(p);
            const ProcLayout &pl = layout.procs[p];
            if (pl.base != base) {
                std::ostringstream msg;
                msg << "procedure base " << pl.base
                    << " leaves a gap or overlap; contiguous placement "
                       "expects " << base;
                emit(sink, "layout.addresses", {p, kNoBlock, kNoEdge},
                     msg.str(),
                     "procedures are placed contiguously in id order");
            }
            if (lintPermutation(proc, pl, sink)) {
                lintTransformFlags(proc, pl, sink);
                lintAddresses(proc, pl, sink);
                lintLoopSplit(proc, pl, options, sink);
                lintReach(proc, pl, options, sink);
            }
            base = pl.base + pl.totalInstrs;
        }
        if (layout.totalInstrs != base) {
            std::ostringstream msg;
            msg << "program totalInstrs " << layout.totalInstrs
                << " disagrees with the last procedure's end " << base;
            emit(sink, "layout.addresses", {}, msg.str(),
                 "the program footprint ends where its last procedure "
                 "does");
        }
    });
}

}  // namespace balign
