/**
 * @file
 * Lint diagnostics: severity, rule id, location and fix hint for one
 * statically detected problem in a Program, edge profile or ProgramLayout.
 *
 * Diagnostics are plain data; the rules in src/lint/ produce them and the
 * drivers in lint.h aggregate them into a LintReport with text and JSON
 * renderings. Severity policy:
 *
 *  - Error:   an invariant the production pipeline must never violate
 *             (broken CFG, non-conserved profile flow, illegal layout,
 *             cost regression). Errors fail `balign lint` and count as
 *             hits for the fuzzer's lint pre-gate.
 *  - Warning: suspicious but legal (unreachable blocks, dead-end
 *             fall-throughs). Reported, never fatal.
 *  - Note:    informational context attached to other diagnostics.
 */

#ifndef BALIGN_LINT_DIAGNOSTIC_H
#define BALIGN_LINT_DIAGNOSTIC_H

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "support/types.h"

namespace balign {

/// How bad a lint finding is. Order matters: higher is worse.
enum class Severity : std::uint8_t {
    Note,
    Warning,
    Error,
};

/// Printable severity name ("note" / "warning" / "error").
const char *severityName(Severity severity);

/// Sentinel for "no edge" in a lint location.
inline constexpr std::uint32_t kNoEdge =
    std::numeric_limits<std::uint32_t>::max();

/**
 * Where a diagnostic points. Any field may be its sentinel; a program-level
 * finding leaves all three unset.
 */
struct LintLocation
{
    ProcId proc = kNoProc;
    BlockId block = kNoBlock;
    /// Index into Procedure::edges() when the finding is about one edge.
    std::uint32_t edge = kNoEdge;
};

/// One lint finding.
struct Diagnostic
{
    /// Stable rule identifier, e.g. "layout.addresses" (see rules.h).
    std::string rule;
    Severity severity = Severity::Error;
    LintLocation loc;
    /// What is wrong, one line.
    std::string message;
    /// How to fix it (may be empty).
    std::string hint;
    /// Architecture / aligner context for layout and cost rules (empty for
    /// CFG and profile rules, which are layout-independent).
    std::string arch;
    std::string aligner;
    /// Alignment objective the finding was priced under (cost rules only;
    /// empty elsewhere, and omitted from the JSON rendering when empty).
    std::string objective;
};

/// One-line text rendering:
/// `error[layout.addresses] proc=0 block=2 (btfnt/cost): message; fix: hint`
std::string formatDiagnostic(const Diagnostic &diagnostic);

/// Writes one diagnostic as a JSON object (schema in README.md).
void writeDiagnosticJson(const Diagnostic &diagnostic, std::ostream &os);

}  // namespace balign

#endif  // BALIGN_LINT_DIAGNOSTIC_H
