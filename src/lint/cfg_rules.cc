/**
 * @file
 * cfg.* rules: CFG well-formedness as diagnostics.
 *
 * This is the single implementation of the structural invariants:
 * cfg/validate.h is a severity filter over these rules (errors only), so
 * the production pipeline's panic-on-malformed-input and the linter's
 * machine-readable findings can never drift apart. The advisory rules
 * (reachability, dead ends, irreducible regions) are lint-only.
 */

#include <algorithm>
#include <sstream>
#include <vector>

#include "analysis/analysis.h"
#include "lint/emit.h"
#include "lint/rules.h"

namespace balign {

namespace {

using lint_detail::emit;

std::string
str(const std::ostringstream &out)
{
    return out.str();
}

/// Per-procedure half of cfg.entry: the body and entry block exist.
void
lintProcEntry(const Procedure &proc, std::vector<Diagnostic> &sink)
{
    if (proc.numBlocks() == 0) {
        emit(sink, "cfg.entry", {proc.id(), kNoBlock, kNoEdge},
             "procedure has no blocks", "every procedure needs a body");
        return;
    }
    if (proc.entry() >= proc.numBlocks()) {
        std::ostringstream out;
        out << "entry block " << proc.entry() << " out of range ("
            << proc.numBlocks() << " blocks)";
        emit(sink, "cfg.entry", {proc.id(), kNoBlock, kNoEdge},
             str(out), "point Procedure::setEntry at an existing block");
    }
}

void
lintEntryRule(const Program &program, std::vector<Diagnostic> &sink)
{
    if (program.numProcs() == 0) {
        emit(sink, "cfg.entry", {}, "program has no procedures",
             "add at least a main procedure");
        return;
    }
    if (program.mainProc() >= program.numProcs()) {
        std::ostringstream out;
        out << "main procedure " << program.mainProc() << " out of range ("
            << program.numProcs() << " procedures)";
        emit(sink, "cfg.entry", {}, str(out),
             "point Program::setMainProc at an existing procedure");
    }
}

void
lintEdgeTargets(const Procedure &proc, std::vector<Diagnostic> &sink)
{
    const ProcId pid = proc.id();
    for (std::uint32_t i = 0; i < proc.numEdges(); ++i) {
        const Edge &edge = proc.edge(i);
        if (edge.src >= proc.numBlocks() || edge.dst >= proc.numBlocks()) {
            std::ostringstream out;
            out << "edge " << edge.src << " -> " << edge.dst
                << " has an endpoint outside the " << proc.numBlocks()
                << "-block procedure";
            emit(sink, "cfg.edge-targets", {pid, kNoBlock, i}, str(out),
                 "edges may only connect existing blocks");
            continue;
        }
        const auto &outs = proc.block(edge.src).outEdges;
        if (std::find(outs.begin(), outs.end(), i) == outs.end()) {
            std::ostringstream out;
            out << "edge " << i << " (" << edge.src << " -> " << edge.dst
                << ") missing from its source block's outEdges";
            emit(sink, "cfg.edge-targets", {pid, edge.src, i}, str(out),
                 "wire edges with Procedure::addEdge, which indexes both "
                 "endpoints");
        }
        const auto &ins = proc.block(edge.dst).inEdges;
        if (std::find(ins.begin(), ins.end(), i) == ins.end()) {
            std::ostringstream out;
            out << "edge " << i << " (" << edge.src << " -> " << edge.dst
                << ") missing from its destination block's inEdges";
            emit(sink, "cfg.edge-targets", {pid, edge.dst, i}, str(out),
                 "wire edges with Procedure::addEdge, which indexes both "
                 "endpoints");
        }
    }
    // Out/in index lists must point at real edges owned by the block.
    for (const BasicBlock &block : proc.blocks()) {
        for (const std::uint32_t index : block.outEdges) {
            if (index >= proc.numEdges()) {
                std::ostringstream out;
                out << "outEdges index " << index << " out of range ("
                    << proc.numEdges() << " edges)";
                emit(sink, "cfg.edge-targets", {pid, block.id, kNoEdge},
                     str(out), "rebuild the block's edge index lists");
            } else if (proc.edge(index).src != block.id) {
                std::ostringstream out;
                out << "outEdges lists edge " << index
                    << " whose source is block " << proc.edge(index).src;
                emit(sink, "cfg.edge-targets", {pid, block.id, index},
                     str(out), "rebuild the block's edge index lists");
            }
        }
        for (const std::uint32_t index : block.inEdges) {
            if (index >= proc.numEdges()) {
                std::ostringstream out;
                out << "inEdges index " << index << " out of range ("
                    << proc.numEdges() << " edges)";
                emit(sink, "cfg.edge-targets", {pid, block.id, kNoEdge},
                     str(out), "rebuild the block's edge index lists");
            } else if (proc.edge(index).dst != block.id) {
                std::ostringstream out;
                out << "inEdges lists edge " << index
                    << " whose destination is block "
                    << proc.edge(index).dst;
                emit(sink, "cfg.edge-targets", {pid, block.id, index},
                     str(out), "rebuild the block's edge index lists");
            }
        }
    }
}

void
lintTerminatorArity(const Procedure &proc, std::vector<Diagnostic> &sink)
{
    const ProcId pid = proc.id();
    for (const BasicBlock &block : proc.blocks()) {
        unsigned taken = 0, fall = 0, other = 0;
        for (const std::uint32_t index : block.outEdges) {
            if (index >= proc.numEdges())
                continue;  // reported by cfg.edge-targets
            switch (proc.edge(index).kind) {
              case EdgeKind::Taken: ++taken; break;
              case EdgeKind::FallThrough: ++fall; break;
              case EdgeKind::Other: ++other; break;
            }
        }
        const char *expected = nullptr;
        bool bad = false;
        switch (block.term) {
          case Terminator::FallThrough:
            bad = taken != 0 || other != 0 || fall > 1;
            expected = "at most one fall-through edge and nothing else";
            break;
          case Terminator::CondBranch:
            bad = taken != 1 || fall != 1 || other != 0;
            expected = "exactly one taken and one fall-through edge";
            break;
          case Terminator::UncondBranch:
            bad = taken != 1 || fall != 0 || other != 0;
            expected = "exactly one taken edge";
            break;
          case Terminator::IndirectJump:
            bad = taken != 0 || fall != 0 || other == 0;
            expected = "one or more Other edges and nothing else";
            break;
          case Terminator::Return:
            bad = !block.outEdges.empty();
            expected = "no out-edges";
            break;
        }
        if (bad) {
            std::ostringstream out;
            out << terminatorName(block.term) << " block has taken=" << taken
                << " fall=" << fall << " other=" << other << ", expected "
                << expected;
            emit(sink, "cfg.terminator-arity", {pid, block.id, kNoEdge},
                 str(out),
                 "match the out-edge kinds to the terminator contract");
        }
    }
}

void
lintCallSites(const Program *program, const Procedure &proc,
              std::vector<Diagnostic> &sink)
{
    const ProcId pid = proc.id();
    for (const BasicBlock &block : proc.blocks()) {
        const std::uint32_t limit =
            block.hasBranchInstr() && block.numInstrs > 0
                ? block.numInstrs - 1
                : block.numInstrs;
        for (const CallSite &site : block.calls) {
            if (program != nullptr && site.callee >= program->numProcs()) {
                std::ostringstream out;
                out << "call at offset " << site.offset
                    << " targets unknown procedure " << site.callee;
                emit(sink, "cfg.call-site", {pid, block.id, kNoEdge},
                     str(out), "calls may only reference existing "
                     "procedures");
            }
            if (site.offset >= limit) {
                std::ostringstream out;
                out << "call at offset " << site.offset
                    << " overlaps the terminator slot of a "
                    << block.numInstrs << "-instruction block";
                emit(sink, "cfg.call-site", {pid, block.id, kNoEdge},
                     str(out),
                     "calls must sit strictly before the terminator");
            }
        }
    }
}

void
lintBlockSizes(const Procedure &proc, std::vector<Diagnostic> &sink)
{
    for (const BasicBlock &block : proc.blocks()) {
        if (block.numInstrs == 0) {
            emit(sink, "cfg.block-size", {proc.id(), block.id, kNoEdge},
                 "block has zero instructions",
                 "every block holds at least its own terminator or one "
                 "straight-line instruction");
        }
    }
}

/// Reachability from the entry over out-edges (ignores calls: this is the
/// intra-procedure CFG the aligners and the walker traverse).
std::vector<bool>
reachableFromEntry(const Procedure &proc)
{
    std::vector<bool> reachable(proc.numBlocks(), false);
    if (proc.entry() >= proc.numBlocks())
        return reachable;
    std::vector<BlockId> work{proc.entry()};
    reachable[proc.entry()] = true;
    while (!work.empty()) {
        const BlockId id = work.back();
        work.pop_back();
        for (const std::uint32_t index : proc.block(id).outEdges) {
            if (index >= proc.numEdges())
                continue;
            const BlockId dst = proc.edge(index).dst;
            if (dst < proc.numBlocks() && !reachable[dst]) {
                reachable[dst] = true;
                work.push_back(dst);
            }
        }
    }
    return reachable;
}

void
lintReachability(const Procedure &proc, std::vector<Diagnostic> &sink)
{
    const std::vector<bool> reachable = reachableFromEntry(proc);
    for (const BasicBlock &block : proc.blocks()) {
        if (block.id < reachable.size() && !reachable[block.id]) {
            emit(sink, "cfg.unreachable-block",
                 {proc.id(), block.id, kNoEdge},
                 "block is unreachable from the procedure entry",
                 "dead code keeps its original position and dilutes "
                 "layout locality; consider garbage-collecting it");
        }
        const bool sink_block = block.outEdges.empty();
        if (sink_block && block.term != Terminator::Return) {
            std::ostringstream out;
            out << terminatorName(block.term)
                << " block has no successor; the walker treats it as a "
                   "silent procedure exit";
            emit(sink, "cfg.dead-end", {proc.id(), block.id, kNoEdge},
                 str(out), "terminate exit paths with an explicit Return");
        }
    }
}

/// Reports every retreating edge that re-enters a loop region other than
/// through the region's header. The analysis layer proves the existence
/// of such edges is DFS-order invariant, so the finding is stable.
void
lintIrreducible(const Procedure &proc, std::vector<Diagnostic> &sink)
{
    const ProcAnalysis analysis = ProcAnalysis::of(proc);
    for (const auto &[src, dst] : analysis.loops.irreducibleEdges) {
        std::ostringstream out;
        out << "retreating edge " << src << " -> " << dst
            << " enters a loop region whose header does not dominate "
               "it (irreducible control flow)";
        emit(sink, "cfg.irreducible", {proc.id(), src, kNoEdge}, str(out),
             "multi-entry loops defeat header-anchored layout "
             "heuristics; consider node splitting");
    }
}

}  // namespace

void
lintCfgProc(const Procedure &proc, const Program *program,
            std::vector<Diagnostic> &sink)
{
    lintProcEntry(proc, sink);
    if (proc.numBlocks() == 0)
        return;  // nothing else is meaningful on an empty body
    lintEdgeTargets(proc, sink);
    lintTerminatorArity(proc, sink);
    lintCallSites(program, proc, sink);
    lintBlockSizes(proc, sink);
    lintReachability(proc, sink);
    lintIrreducible(proc, sink);
}

void
lintCfg(const Program &program, std::vector<Diagnostic> &sink)
{
    lintEntryRule(program, sink);
    for (const Procedure &proc : program.procs())
        lintCfgProc(proc, &program, sink);
}

}  // namespace balign
