#include "lint/lint.h"

#include <map>
#include <ostream>
#include <sstream>

#include "check/differ.h"
#include "layout/chain_order.h"

namespace balign {

std::size_t
LintReport::count(Severity severity) const
{
    std::size_t n = 0;
    for (const Diagnostic &diagnostic : diagnostics) {
        if (diagnostic.severity == severity)
            ++n;
    }
    return n;
}

LintReport
lintProgram(const Program &program, const LintRunOptions &options)
{
    LintReport report;
    report.profileProvenance =
        profileProvenanceName(program.profileProvenance());
    lintCfg(program, report.diagnostics);
    const bool cfg_clean = report.clean();
    lintProfile(program, options.lint, report.diagnostics);
    // The est.* self-checks estimate a copy of the program, which is
    // only meaningful on a structurally sound CFG.
    if (options.estimateRules && cfg_clean)
        lintEstimate(program, options.lint, report.diagnostics);

    // A structurally broken CFG makes alignment meaningless (and the
    // aligners may panic on it); stop at the structural findings.
    if (!options.layoutRules || !report.clean())
        return report;

    const std::vector<Arch> &archs =
        options.archs.empty() ? allArchs() : options.archs;
    const std::vector<AlignerKind> &kinds =
        options.kinds.empty() ? allAlignerKinds() : options.kinds;

    // Under an architecture-independent objective (ExtTSP) the prices are
    // identical on every architecture, so cost.monotone is checked once
    // instead of per architecture.
    const bool arch_dependent_objective =
        objectiveArchDependent(options.align.objective);
    bool objective_priced = false;

    for (const Arch arch : archs) {
        // Mirror runConfigs: per-architecture cost model and the BT/FNT
        // chain-ordering override, so what gets linted is what the
        // experiments evaluate.
        const CostModel model(arch);
        AlignOptions align = options.align;
        // Lint reports findings; a verifier panic would mask them.
        align.verify = false;
        if (arch == Arch::BtFnt)
            align.chainOrder = ChainOrderPolicy::BtFntPrecedence;

        std::map<AlignerKind, ProgramLayout> layouts;
        for (const AlignerKind kind : kinds) {
            layouts[kind] = alignProgram(program, kind, &model, align);
            lintLayout(program, layouts[kind], archName(arch),
                       alignerKindName(kind), options.lint,
                       report.diagnostics);
            ++report.layoutsChecked;
        }

        if (!options.costRules)
            continue;
        if (!arch_dependent_objective && objective_priced)
            continue;  // same prices on every architecture: already done
        const auto greedy = layouts.find(AlignerKind::Greedy);
        if (greedy == layouts.end())
            continue;
        const auto objective = makeObjective(options.align.objective, &model);
        const std::string arch_context =
            objective->archDependent() ? archName(arch) : std::string();
        for (const AlignerKind candidate :
             {AlignerKind::Cost, AlignerKind::Try15, AlignerKind::ExtTsp}) {
            const auto found = layouts.find(candidate);
            if (found == layouts.end())
                continue;
            lintCostMonotone(program, *objective, arch_context,
                             greedy->second,
                             alignerKindName(AlignerKind::Greedy),
                             found->second, alignerKindName(candidate),
                             options.lint, report.diagnostics);
            ++report.costPairsChecked;
        }
        objective_priced = true;
    }
    return report;
}

std::string
formatLintReport(const LintReport &report, const std::string &programName)
{
    std::ostringstream out;
    for (const Diagnostic &diagnostic : report.diagnostics)
        out << formatDiagnostic(diagnostic) << "\n";
    out << "lint: " << programName << ": " << report.errors()
        << " error(s), " << report.warnings() << " warning(s), "
        << report.count(Severity::Note) << " note(s); "
        << report.layoutsChecked << " layout(s) and "
        << report.costPairsChecked << " cost pair(s) checked; profile "
        << report.profileProvenance << "\n";
    return out.str();
}

void
writeLintReportJson(const LintReport &report,
                    const std::string &programName, std::ostream &os)
{
    os << "{\"schema_version\":" << kLintSchemaVersion
       << ",\"program\":\"";
    for (const char c : programName) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << "\",\"profile\":\"" << report.profileProvenance
       << "\",\"clean\":" << (report.clean() ? "true" : "false")
       << ",\"errors\":" << report.errors()
       << ",\"warnings\":" << report.warnings()
       << ",\"notes\":" << report.count(Severity::Note)
       << ",\"layoutsChecked\":" << report.layoutsChecked
       << ",\"costPairsChecked\":" << report.costPairsChecked
       << ",\"diagnostics\":[";
    for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
        if (i > 0)
            os << ',';
        writeDiagnosticJson(report.diagnostics[i], os);
    }
    os << "]}";
}

}  // namespace balign
