/**
 * @file
 * Internal helper shared by the rule translation units: construct a
 * Diagnostic whose severity comes from the registry, so a rule can never
 * drift from its cataloged severity.
 */

#ifndef BALIGN_LINT_EMIT_H
#define BALIGN_LINT_EMIT_H

#include <string>
#include <vector>

#include "lint/rules.h"
#include "support/log.h"

namespace balign {
namespace lint_detail {

inline Diagnostic &
emit(std::vector<Diagnostic> &sink, const char *rule,
     const LintLocation &loc, std::string message, std::string hint = "")
{
    const RuleInfo *info = findLintRule(rule);
    if (info == nullptr)
        panic("lint: rule '%s' missing from the registry", rule);
    Diagnostic diagnostic;
    diagnostic.rule = rule;
    diagnostic.severity = info->severity;
    diagnostic.loc = loc;
    diagnostic.message = std::move(message);
    diagnostic.hint = std::move(hint);
    sink.push_back(std::move(diagnostic));
    return sink.back();
}

}  // namespace lint_detail
}  // namespace balign

#endif  // BALIGN_LINT_EMIT_H
