/**
 * @file
 * Lint rule registry and the rule functions themselves.
 *
 * Every rule has a stable string id (pinned by the injection tests in
 * tests/test_lint.cc), a default severity and a one-line summary. The
 * rules are grouped by the artifact they verify:
 *
 *  - cfg.*     Program structure alone (no profile, no layout).
 *  - prof.*    The edge profile recorded into the Program.
 *  - layout.*  A concrete ProgramLayout against its Program.
 *  - cost.*    Cost-model relations between whole layouts.
 *
 * Rule functions APPEND diagnostics; they never clear the sink. All rules
 * other than cost.monotone are pure structural scans — no trace is
 * replayed and no layout is built by the rule itself.
 */

#ifndef BALIGN_LINT_RULES_H
#define BALIGN_LINT_RULES_H

#include <string_view>
#include <vector>

#include "bpred/cost_model.h"
#include "cfg/program.h"
#include "emit/encoding.h"
#include "layout/layout_result.h"
#include "lint/diagnostic.h"
#include "objective/objective.h"

namespace balign {

/// Registry entry for one rule.
struct RuleInfo
{
    const char *id;
    Severity severity;
    const char *summary;
};

/// Every rule the linter knows, in catalog order.
const std::vector<RuleInfo> &allLintRules();

/// Looks up a rule by id; nullptr when unknown.
const RuleInfo *findLintRule(std::string_view id);

/// Tunables for the profile and cost rules.
struct LintOptions
{
    /**
     * Allowed program-wide profile-flow excess (sum over interior blocks
     * of inflow - outflow). A truncated walk leaves one unfinished
     * activation per call-stack frame, so the bound defaults to the
     * walker's depth cap plus the final block.
     */
    Weight flowSlack = 65;

    /// Relative tolerance for cost.monotone comparisons (floating-point
    /// summation noise only; a real regression exceeds this by orders of
    /// magnitude).
    double costRelTolerance = 1e-9;

    /// layout.loop-split only considers natural loops whose total
    /// back-edge weight reaches this threshold: splitting a loop the
    /// program barely iterates costs nothing worth reporting.
    Weight hotLoopWeight = 1024;

    /// Encoding model layout.reach relaxes each layout under. The
    /// default is the variable model — the one with a short form to
    /// escape; under FixedWord nothing is relaxable and the rule passes
    /// vacuously.
    EncodingModelKind encoding = EncodingModelKind::Variable;
};

// ---------------------------------------------------------------------
// cfg.* — CFG well-formedness.

/// Runs every cfg.* rule over @p program.
void lintCfg(const Program &program, std::vector<Diagnostic> &sink);

/**
 * Runs the per-procedure cfg.* rules over @p proc alone. @p program may be
 * null, in which case the checks that need the whole program (call-site
 * callee existence) are skipped. This is the engine behind
 * cfg/validate.h, which filters the diagnostics down to errors.
 */
void lintCfgProc(const Procedure &proc, const Program *program,
                 std::vector<Diagnostic> &sink);

// ---------------------------------------------------------------------
// prof.* — edge-profile consistency. Meaningful after profiling; all
// rules pass vacuously on an unprofiled (all-zero-weight) program.

/// Runs every prof.* rule over @p program.
void lintProfile(const Program &program, const LintOptions &options,
                 std::vector<Diagnostic> &sink);

// ---------------------------------------------------------------------
// est.* — static-estimator self-checks: estimate a COPY of @p program
// (estimate/estimate.h) and verify the synthesized branch probabilities
// are distributions, the pushed integer profile conserves flow within
// the stranding budget, and irreducible fallbacks are surfaced as
// notes. Requires a structurally sound CFG (run cfg.* first).

/// Runs every est.* rule against a fresh estimate of @p program.
void lintEstimate(const Program &program, const LintOptions &options,
                  std::vector<Diagnostic> &sink);

// ---------------------------------------------------------------------
// layout.* — legality of one materialized layout. @p arch / @p aligner
// are attached to the diagnostics as context (may be empty).

/// Runs every layout.* rule over (@p program, @p layout).
void lintLayout(const Program &program, const ProgramLayout &layout,
                const std::string &arch, const std::string &aligner,
                const LintOptions &options, std::vector<Diagnostic> &sink);

// ---------------------------------------------------------------------
// obj.* — findings over a decoded object (disasm/disasm.h). Unlike the
// checkobj obligations these are advisory: they describe properties of
// the emitted bytes (unreachable decoded blocks, branches stuck in
// their near form) rather than source/binary disagreements. Run from
// `balign check-obj`, not from lintProgram — they need an object.

struct Disassembly;

/// Runs every obj.* rule over @p disasm. @p encoding is attached to the
/// diagnostics as context (the aligner field, which check-obj reuses).
void lintObject(const Program &program, const Disassembly &disasm,
                const std::string &encoding,
                std::vector<Diagnostic> &sink);

// ---------------------------------------------------------------------
// cost.* — objective monotonicity. A candidate layout (Cost / Try15 /
// ExtTsp) must not price more than the baseline (Greedy) under the active
// alignment objective; prices are recomputed independently by the
// objective's layoutCost, not read from any aligner.

/// Checks the objective price of @p candidate against @p baseline.
/// @p arch is diagnostic context only (empty for architecture-independent
/// objectives).
void lintCostMonotone(const Program &program,
                      const AlignmentObjective &objective,
                      const std::string &arch, const ProgramLayout &baseline,
                      const char *baselineName,
                      const ProgramLayout &candidate,
                      const char *candidateName, const LintOptions &options,
                      std::vector<Diagnostic> &sink);

/// Table-1 convenience: prices under TableCostObjective(@p model) with the
/// model's architecture as diagnostic context.
void lintCostMonotone(const Program &program, const CostModel &model,
                      const ProgramLayout &baseline,
                      const char *baselineName,
                      const ProgramLayout &candidate,
                      const char *candidateName, const LintOptions &options,
                      std::vector<Diagnostic> &sink);

}  // namespace balign

#endif  // BALIGN_LINT_RULES_H
