/**
 * @file
 * cost.* rules: objective monotonicity between whole layouts.
 *
 * The paper's claim (Table 4 discussion) is that the objective-guided
 * aligners can never lose to the cost-blind Greedy baseline under the very
 * objective they optimize: pricing both layouts with the active
 * AlignmentObjective and the measured edge profile, price(candidate) <=
 * price(greedy). Under the default Table-1 objective the price is the
 * modeled cycle count recomputed by bpred/static_cost.h from final
 * addresses — independently of any aligner bookkeeping — so a regression
 * in either the aligners or the materializer trips the rule. Other
 * objectives (ExtTSP) are priced by their own layoutCost, which the
 * driver's fallback splice guarantees monotone too.
 */

#include <sstream>
#include <vector>

#include "lint/emit.h"
#include "lint/rules.h"
#include "objective/table_cost.h"

namespace balign {

void
lintCostMonotone(const Program &program, const AlignmentObjective &objective,
                 const std::string &arch, const ProgramLayout &baseline,
                 const char *baselineName, const ProgramLayout &candidate,
                 const char *candidateName, const LintOptions &options,
                 std::vector<Diagnostic> &sink)
{
    const double base_cost = objective.layoutCost(program, baseline);
    const double cand_cost = objective.layoutCost(program, candidate);
    // Relative-plus-absolute allowance: prices may be negative (ExtTSP) or
    // near zero, so scale by magnitude.
    const double magnitude = base_cost < 0 ? -base_cost : base_cost;
    const double allowance =
        magnitude * options.costRelTolerance + options.costRelTolerance;
    if (cand_cost <= base_cost + allowance)
        return;

    std::ostringstream msg;
    msg.precision(17);
    msg << candidateName << " layout prices " << cand_cost << " under the "
        << objective.name() << " objective, worse than the " << baselineName
        << " baseline's " << base_cost << " on the same profile";
    Diagnostic &diagnostic = lint_detail::emit(
        sink, "cost.monotone", {}, msg.str(),
        "an objective-guided aligner can always fall back to the baseline "
        "chains; pricing more means its objective or the materializer "
        "regressed");
    diagnostic.arch = arch;
    diagnostic.aligner = candidateName;
    diagnostic.objective = objective.name();
}

void
lintCostMonotone(const Program &program, const CostModel &model,
                 const ProgramLayout &baseline, const char *baselineName,
                 const ProgramLayout &candidate, const char *candidateName,
                 const LintOptions &options, std::vector<Diagnostic> &sink)
{
    const TableCostObjective objective(model);
    lintCostMonotone(program, objective, archName(model.arch()), baseline,
                     baselineName, candidate, candidateName, options, sink);
}

}  // namespace balign
