/**
 * @file
 * cost.* rules: cost-model monotonicity between whole layouts.
 *
 * The paper's claim (Table 4 discussion) is that the cost-guided aligners
 * can never lose to the cost-blind Greedy baseline under the very model
 * they optimize: pricing both layouts with the Table 1 cost table and the
 * measured edge profile, cost(Cost) <= cost(Greedy) and cost(Try15) <=
 * cost(Greedy). The price is recomputed here by bpred/static_cost.h from
 * final addresses — independently of any aligner bookkeeping — so a
 * regression in either the aligners or the materializer trips the rule.
 */

#include <sstream>
#include <vector>

#include "bpred/static_cost.h"
#include "lint/emit.h"
#include "lint/rules.h"

namespace balign {

void
lintCostMonotone(const Program &program, const CostModel &model,
                 const ProgramLayout &baseline, const char *baselineName,
                 const ProgramLayout &candidate, const char *candidateName,
                 const LintOptions &options, std::vector<Diagnostic> &sink)
{
    const double base_cost = modeledBranchCost(program, baseline, model);
    const double cand_cost = modeledBranchCost(program, candidate, model);
    const double allowance =
        base_cost * options.costRelTolerance + options.costRelTolerance;
    if (cand_cost <= base_cost + allowance)
        return;

    std::ostringstream msg;
    msg.precision(17);
    msg << candidateName << " layout models " << cand_cost
        << " cycles, worse than the " << baselineName << " baseline's "
        << base_cost << " on the same profile";
    Diagnostic &diagnostic = lint_detail::emit(
        sink, "cost.monotone", {}, msg.str(),
        "a cost-guided aligner can always fall back to the baseline "
        "chains; costing more means its objective or the materializer "
        "regressed");
    diagnostic.arch = archName(model.arch());
    diagnostic.aligner = candidateName;
}

}  // namespace balign
