/**
 * @file
 * obj.* rules: advisory findings over a decoded object.
 *
 * These run on the output of the independent disassembler, so they see
 * exactly what a consumer of the emitted bytes sees — the binary-level
 * mirrors of cfg.unreachable-block (obj.unreachable, over the DECODED
 * graph rather than the source CFG) and layout.reach (obj.long-form,
 * over the branch forms that actually survived relaxation rather than
 * the displacements that predicted them). They are advisory by design:
 * any source/binary DISAGREEMENT is a checkobj obligation failure, not a
 * lint finding.
 */

#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "disasm/disasm.h"
#include "lint/emit.h"
#include "lint/rules.h"

namespace balign {

namespace {

using lint_detail::emit;

/// Forward reachability from the entry block over decoded successor
/// edges (addresses), depth-first.
std::vector<bool>
reachableBlocks(const LiftedCfg &cfg)
{
    std::map<std::uint64_t, std::size_t> byAddr;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
        byAddr.emplace(cfg.blocks[b].addr, b);

    std::vector<bool> reached(cfg.blocks.size(), false);
    std::vector<std::size_t> stack;
    if (!cfg.blocks.empty()) {
        reached[0] = true;  // blocks are address-ordered; entry is first
        stack.push_back(0);
    }
    while (!stack.empty()) {
        const std::size_t b = stack.back();
        stack.pop_back();
        for (const std::uint64_t succ : cfg.blocks[b].succs) {
            const auto it = byAddr.find(succ);
            if (it == byAddr.end() || reached[it->second])
                continue;
            reached[it->second] = true;
            stack.push_back(it->second);
        }
    }
    return reached;
}

}  // namespace

void
lintObject(const Program &program, const Disassembly &disasm,
           const std::string &encoding, std::vector<Diagnostic> &sink)
{
    const std::size_t first = sink.size();
    for (std::size_t p = 0; p < disasm.procs.size(); ++p) {
        const DecodedProc &proc = disasm.procs[p];
        if (!proc.ok)
            continue;
        const ProcId pid = p < program.numProcs()
                               ? static_cast<ProcId>(p)
                               : kNoProc;

        const LiftedCfg cfg =
            liftCfg(cfgInstrsFromDecoded(proc), proc.base, proc.size);
        const std::vector<bool> reached = reachableBlocks(cfg);
        for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
            if (reached[b])
                continue;
            std::ostringstream msg;
            msg << "decoded block at byte " << cfg.blocks[b].addr << " ("
                << cfg.blocks[b].numInstrs << " instructions) in " << '"'
                << proc.name
                << "\" is unreachable from the procedure entry";
            emit(sink, "obj.unreachable", {pid, kNoBlock, kNoEdge},
                 msg.str(),
                 "dead bytes cost icache space; drop the block from the "
                 "layout or rewire an edge to it");
        }

        for (const DecodedInstr &instr : proc.instrs) {
            if (instr.form != BranchForm::Near)
                continue;
            std::ostringstream msg;
            msg << instrClassName(instr.cls) << " at byte " << instr.addr
                << " in \"" << proc.name << "\" kept its near form"
                << " (displacement " << instr.disp << ')';
            emit(sink, "obj.long-form", {pid, kNoBlock, kNoEdge},
                 msg.str(),
                 "a layout that places the target within rel8 range "
                 "saves bytes here");
        }
    }
    for (std::size_t i = first; i < sink.size(); ++i)
        sink[i].aligner = encoding;
}

}  // namespace balign
