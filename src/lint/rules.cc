#include "lint/rules.h"

namespace balign {

const std::vector<RuleInfo> &
allLintRules()
{
    static const std::vector<RuleInfo> rules = {
        // CFG well-formedness.
        {"cfg.entry", Severity::Error,
         "program main and every procedure entry exist"},
        {"cfg.edge-targets", Severity::Error,
         "edge endpoints in range and cross-indexed by both blocks"},
        {"cfg.terminator-arity", Severity::Error,
         "out-edge kinds and counts match the block terminator"},
        {"cfg.call-site", Severity::Error,
         "call sites reference existing procedures and precede the "
         "terminator slot"},
        {"cfg.block-size", Severity::Error,
         "every block has at least one instruction"},
        {"cfg.unreachable-block", Severity::Warning,
         "block cannot be reached from its procedure entry"},
        {"cfg.dead-end", Severity::Warning,
         "non-return block has no successor (walk unwinds silently)"},
        {"cfg.irreducible", Severity::Warning,
         "loop region has a second entry (retreating edge that is not a "
         "back edge); Try15 grouping and ExtTSP chain merging assume "
         "reducible loops"},

        // Profile consistency.
        {"prof.flow-conservation", Severity::Error,
         "per-block edge inflow equals outflow (modulo entry/exit and "
         "truncated-walk slack)"},
        {"prof.unreachable-weight", Severity::Error,
         "profile weight on an edge no walk could reach"},
        {"prof.uncalled-proc", Severity::Error,
         "profile weight inside a procedure no call site references"},
        {"prof.bias-range", Severity::Error,
         "edge bias is a probability in [0, 1]"},
        {"prof.flow", Severity::Error,
         "natural-loop boundary flow conservation: exit weight never "
         "exceeds entry weight and strands at most the truncated-walk "
         "slack"},
        {"prof.degenerate", Severity::Note,
         "program carries edges but a completely empty profile; aligners "
         "fall back to structural order (heavy sampling or thinning can "
         "produce this)"},

        // Static-estimator self-checks (the estimator runs on a copy;
        // the program's own profile is never touched).
        {"est.prob", Severity::Error,
         "estimated transition probabilities form a distribution over "
         "every block's out-edges"},
        {"est.flow", Severity::Error,
         "estimated integer profile conserves per-block flow within the "
         "stranding budget"},
        {"est.fallback", Severity::Note,
         "irreducible region made the estimator use the "
         "bounded-iteration fallback instead of the closed form"},

        // Layout legality.
        {"layout.entry-first", Severity::Error,
         "layout order starts with the procedure entry block"},
        {"layout.permutation", Severity::Error,
         "layout order is a permutation of all blocks"},
        {"layout.addresses", Severity::Error,
         "addresses strictly monotone, gap-free and contiguous across "
         "procedures"},
        {"layout.sizes", Severity::Error,
         "final/base sizes and branch/jump addresses agree with the "
         "transformation flags"},
        {"layout.branch-polarity", Severity::Error,
         "conditional realization agrees with layout adjacency"},
        {"layout.jump-needed", Severity::Error,
         "unconditional jumps inserted exactly where required and removed "
         "where adjacent"},
        {"layout.loop-split", Severity::Note,
         "hot natural loop laid out non-contiguously (its blocks span "
         "more slots than they fill)"},
        {"layout.reach", Severity::Note,
         "conditional branch displacement exceeds the short-encoding "
         "range of the active encoding model after relaxation"},

        // Cost-model relations.
        {"cost.monotone", Severity::Error,
         "cost-aware layouts never model-cost more than the Greedy "
         "baseline (Table 1 recomputation)"},

        // Decoded-object findings (binary-level mirrors of cfg.* /
        // layout.* rules, derived from the independent disassembly).
        {"obj.unreachable", Severity::Warning,
         "decoded basic block is unreachable from its procedure entry in "
         "the decoded control-flow graph"},
        {"obj.long-form", Severity::Note,
         "decoded branch kept its near (rel32) form — the relaxation "
         "fixpoint could not shorten it"},
    };
    return rules;
}

const RuleInfo *
findLintRule(std::string_view id)
{
    for (const RuleInfo &rule : allLintRules()) {
        if (id == rule.id)
            return &rule;
    }
    return nullptr;
}

}  // namespace balign
