#include "lint/diagnostic.h"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace balign {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

std::string
formatDiagnostic(const Diagnostic &diagnostic)
{
    std::ostringstream out;
    out << severityName(diagnostic.severity) << "[" << diagnostic.rule
        << "]";
    if (diagnostic.loc.proc != kNoProc)
        out << " proc=" << diagnostic.loc.proc;
    if (diagnostic.loc.block != kNoBlock)
        out << " block=" << diagnostic.loc.block;
    if (diagnostic.loc.edge != kNoEdge)
        out << " edge=" << diagnostic.loc.edge;
    if (!diagnostic.arch.empty() || !diagnostic.aligner.empty()) {
        out << " (" << diagnostic.arch;
        if (!diagnostic.aligner.empty())
            out << "/" << diagnostic.aligner;
        out << ")";
    }
    if (!diagnostic.objective.empty())
        out << " [objective=" << diagnostic.objective << "]";
    out << ": " << diagnostic.message;
    if (!diagnostic.hint.empty())
        out << "; fix: " << diagnostic.hint;
    return out.str();
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void
writeJsonString(const std::string &text, std::ostream &os)
{
    os << '"';
    for (const char c : text) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeOptionalId(const char *key, std::uint64_t value, std::uint64_t sentinel,
                std::ostream &os)
{
    os << '"' << key << "\":";
    if (value == sentinel)
        os << "null";
    else
        os << value;
}

}  // namespace

void
writeDiagnosticJson(const Diagnostic &diagnostic, std::ostream &os)
{
    os << "{\"rule\":";
    writeJsonString(diagnostic.rule, os);
    os << ",\"severity\":\"" << severityName(diagnostic.severity) << "\",";
    writeOptionalId("proc", diagnostic.loc.proc, kNoProc, os);
    os << ',';
    writeOptionalId("block", diagnostic.loc.block, kNoBlock, os);
    os << ',';
    writeOptionalId("edge", diagnostic.loc.edge, kNoEdge, os);
    os << ",\"arch\":";
    writeJsonString(diagnostic.arch, os);
    os << ",\"aligner\":";
    writeJsonString(diagnostic.aligner, os);
    // Older readers (and the pinned corpus goldens) predate the objective
    // field; emit it only when set so objective-free reports are
    // byte-identical to theirs.
    if (!diagnostic.objective.empty()) {
        os << ",\"objective\":";
        writeJsonString(diagnostic.objective, os);
    }
    os << ",\"message\":";
    writeJsonString(diagnostic.message, os);
    os << ",\"hint\":";
    writeJsonString(diagnostic.hint, os);
    os << '}';
}

}  // namespace balign
