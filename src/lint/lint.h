/**
 * @file
 * Static-analysis driver: runs the lint rule catalog (lint/rules.h) over a
 * program, its recorded edge profile, and the layouts every configured
 * (architecture, aligner) pair would produce — without replaying a single
 * trace event.
 *
 * Relation to the dynamic oracle (check/differ.h): the differ catches
 * divergences only when a recorded walk is replayed through both
 * evaluators; the linter checks the invariants that hold for EVERY walk
 * (CFG well-formedness, profile flow conservation, layout legality, cost
 * monotonicity) directly on the IR. The fuzzer runs lint as a cheap
 * pre-oracle gate: a lint error on a fuzz program is a finding of its own
 * and shrinks exactly like a divergence.
 */

#ifndef BALIGN_LINT_LINT_H
#define BALIGN_LINT_LINT_H

#include <iosfwd>
#include <string>
#include <vector>

#include "core/align_program.h"
#include "lint/rules.h"

namespace balign {

/// Version of the lint-report JSON schema (the `schema_version` field).
inline constexpr int kLintSchemaVersion = 1;

/// What lintProgram checked and found.
struct LintReport
{
    std::vector<Diagnostic> diagnostics;
    /// (architecture, aligner) layouts built and checked.
    std::size_t layoutsChecked = 0;
    /// cost.monotone (baseline, candidate) pairs compared.
    std::size_t costPairsChecked = 0;
    /// Provenance tag of the linted program's profile ("measured" /
    /// "degraded" / "estimated"), so goldens and certificates record
    /// which profile kind produced the checked layouts.
    std::string profileProvenance = "measured";

    /// Diagnostics at exactly @p severity.
    std::size_t count(Severity severity) const;

    std::size_t errors() const { return count(Severity::Error); }
    std::size_t warnings() const { return count(Severity::Warning); }

    /// No errors (warnings and notes do not spoil a clean bill).
    bool clean() const { return errors() == 0; }
};

/// Configuration for one lintProgram run.
struct LintRunOptions
{
    /// Architectures whose layouts to check (empty = all eight).
    std::vector<Arch> archs;
    /// Aligners whose layouts to check (empty = Original, Greedy, Cost,
    /// Try15).
    std::vector<AlignerKind> kinds;
    /// Alignment options; the BT/FNT chain-order override is applied on
    /// top, exactly as the experiment runner does.
    AlignOptions align;
    /// Rule tunables.
    LintOptions lint;
    /// Build and check layouts (layout.* rules).
    bool layoutRules = true;
    /// Run the static-estimator self-checks (est.* rules): estimate a
    /// copy of the program and verify the synthesized probabilities and
    /// integer flow. Skipped automatically when cfg.* found errors.
    bool estimateRules = true;
    /// Compare Cost/Try15 against Greedy per architecture (cost.*
    /// rules; requires Greedy and at least one candidate in `kinds`).
    bool costRules = true;
};

/**
 * Runs the full catalog: cfg.* and prof.* on @p program, then — for every
 * configured (architecture, aligner) pair — aligns the program exactly as
 * the experiment runner would and runs layout.* on the result, plus
 * cost.* per architecture. The profile rules consume whatever edge
 * weights @p program carries; an unprofiled program passes them
 * vacuously.
 */
LintReport lintProgram(const Program &program,
                       const LintRunOptions &options = {});

/// Text rendering: one line per diagnostic plus a summary line.
std::string formatLintReport(const LintReport &report,
                             const std::string &programName);

/// JSON rendering (schema documented in README.md).
void writeLintReportJson(const LintReport &report,
                         const std::string &programName, std::ostream &os);

}  // namespace balign

#endif  // BALIGN_LINT_LINT_H
