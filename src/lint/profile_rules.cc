/**
 * @file
 * prof.* rules: consistency of the edge profile recorded into a Program.
 *
 * The walker traverses edges and the profiler increments their weights, so
 * a well-formed profile conserves flow: every activation of an interior
 * block arrived over exactly one in-edge and left over exactly one
 * out-edge. The permitted exceptions mirror the walker exactly:
 *
 *  - procedure entry blocks gain activations from calls and restarts that
 *    are not CFG edges (skipped entirely);
 *  - sink blocks (Return, or dead ends with no out-edges) absorb flow;
 *  - a budget-truncated walk leaves at most one unfinished activation per
 *    frame of the final call stack, so inflow may exceed outflow by a
 *    small program-wide total (LintOptions::flowSlack, default = the
 *    walker's depth cap + 1).
 *
 * Outflow exceeding inflow, weight on unreachable edges, or weight inside
 * a procedure nothing calls can never happen in a real profile and is
 * always an error.
 */

#include <sstream>
#include <vector>

#include "analysis/analysis.h"
#include "lint/emit.h"
#include "lint/rules.h"

namespace balign {

namespace {

using lint_detail::emit;

Weight
inflow(const Procedure &proc, const BasicBlock &block)
{
    Weight sum = 0;
    for (const std::uint32_t index : block.inEdges) {
        if (index < proc.numEdges())
            sum += proc.edge(index).weight;
    }
    return sum;
}

Weight
outflow(const Procedure &proc, const BasicBlock &block)
{
    Weight sum = 0;
    for (const std::uint32_t index : block.outEdges) {
        if (index < proc.numEdges())
            sum += proc.edge(index).weight;
    }
    return sum;
}

void
lintFlowConservation(const Program &program, const LintOptions &options,
                     std::vector<Diagnostic> &sink)
{
    Weight total_excess = 0;
    LintLocation worst;
    Weight worst_excess = 0;
    for (const Procedure &proc : program.procs()) {
        for (const BasicBlock &block : proc.blocks()) {
            if (block.id == proc.entry())
                continue;  // receives call/restart activations
            if (block.outEdges.empty())
                continue;  // sink: Return or dead end absorbs flow
            const Weight in = inflow(proc, block);
            const Weight out = outflow(proc, block);
            if (out > in) {
                std::ostringstream msg;
                msg << "block emits more flow than it receives (inflow="
                    << in << ", outflow=" << out << ")";
                emit(sink, "prof.flow-conservation",
                     {proc.id(), block.id, kNoEdge}, msg.str(),
                     "an activation cannot leave a block it never "
                     "entered; re-profile from a clean Program");
                continue;
            }
            const Weight excess = in - out;
            total_excess += excess;
            if (excess > worst_excess) {
                worst_excess = excess;
                worst = {proc.id(), block.id, kNoEdge};
            }
        }
    }
    if (total_excess > options.flowSlack) {
        std::ostringstream msg;
        msg << "program-wide inflow/outflow excess " << total_excess
            << " exceeds the truncated-walk allowance of "
            << options.flowSlack << " (largest single-block excess "
            << worst_excess << ")";
        emit(sink, "prof.flow-conservation", worst, msg.str(),
             "only the final call stack of one truncated walk may hold "
             "unfinished activations; anything more is double counting");
    }
}

/**
 * prof.flow: Kirchhoff conservation at natural-loop boundaries. Every
 * path into a reducible loop's body passes through its header (the
 * dominance property of a genuine back edge), so over a whole profile the
 * weight leaving a loop can never exceed the weight that entered it, and
 * the difference is bounded by the truncated-walk slack (activations the
 * budget stranded inside). The block-level rule above cannot see these
 * violations: scaling every in-loop edge by the same factor conserves
 * per-block flow yet fabricates iterations out of thin air.
 *
 * Loops containing the procedure entry are skipped (call and restart
 * activations enter them without crossing a CFG edge), as are procedures
 * with irreducible regions (a second loop entry voids the boundary
 * argument; cfg.irreducible reports those separately).
 */
void
lintLoopFlow(const Program &program, const LintOptions &options,
             std::vector<Diagnostic> &sink)
{
    for (const Procedure &proc : program.procs()) {
        const ProcAnalysis analysis = ProcAnalysis::of(proc);
        if (analysis.loops.irreducible())
            continue;
        for (const NaturalLoop &loop : analysis.loops.loops) {
            if (loop.contains(proc.entry()))
                continue;
            Weight entries = 0, exits = 0;
            for (std::uint32_t i = 0; i < proc.numEdges(); ++i) {
                const Edge &edge = proc.edge(i);
                if (edge.src >= proc.numBlocks() ||
                    edge.dst >= proc.numBlocks())
                    continue;  // reported by cfg.edge-targets
                const bool src_in = loop.contains(edge.src);
                const bool dst_in = loop.contains(edge.dst);
                if (!src_in && dst_in)
                    entries += edge.weight;
                else if (src_in && !dst_in)
                    exits += edge.weight;
            }
            if (exits > entries) {
                std::ostringstream msg;
                msg << "loop at header " << loop.header << " emits weight "
                    << exits << " but only " << entries << " ever entered";
                emit(sink, "prof.flow", {proc.id(), loop.header, kNoEdge},
                     msg.str(),
                     "an activation cannot leave a loop it never "
                     "entered; the profile was not recorded by one "
                     "consistent walk");
            } else if (entries - exits > options.flowSlack) {
                std::ostringstream msg;
                msg << "loop at header " << loop.header << " swallows "
                    << entries - exits << " activations (entered "
                    << entries << ", left " << exits
                    << "), above the truncated-walk allowance of "
                    << options.flowSlack;
                emit(sink, "prof.flow", {proc.id(), loop.header, kNoEdge},
                     msg.str(),
                     "only activations stranded by the walk budget may "
                     "stay inside a loop; anything more is double "
                     "counting");
            }
        }
    }
}

void
lintUnreachableWeight(const Program &program, std::vector<Diagnostic> &sink)
{
    for (const Procedure &proc : program.procs()) {
        // Intra-procedure reachability from the entry block.
        std::vector<bool> reachable(proc.numBlocks(), false);
        if (proc.entry() < proc.numBlocks()) {
            std::vector<BlockId> work{proc.entry()};
            reachable[proc.entry()] = true;
            while (!work.empty()) {
                const BlockId id = work.back();
                work.pop_back();
                for (const std::uint32_t index : proc.block(id).outEdges) {
                    if (index >= proc.numEdges())
                        continue;
                    const BlockId dst = proc.edge(index).dst;
                    if (dst < proc.numBlocks() && !reachable[dst]) {
                        reachable[dst] = true;
                        work.push_back(dst);
                    }
                }
            }
        }
        for (std::uint32_t i = 0; i < proc.numEdges(); ++i) {
            const Edge &edge = proc.edge(i);
            if (edge.weight == 0 || edge.src >= proc.numBlocks())
                continue;
            if (!reachable[edge.src]) {
                std::ostringstream msg;
                msg << "edge " << edge.src << " -> " << edge.dst
                    << " carries weight " << edge.weight
                    << " but its source is unreachable from the entry";
                emit(sink, "prof.unreachable-weight",
                     {proc.id(), edge.src, i}, msg.str(),
                     "no walk can traverse an unreachable edge; the "
                     "profile was recorded against a different CFG");
            }
        }
    }
}

void
lintUncalledProcWeight(const Program &program, std::vector<Diagnostic> &sink)
{
    std::vector<bool> referenced(program.numProcs(), false);
    if (program.mainProc() < program.numProcs())
        referenced[program.mainProc()] = true;
    for (const Procedure &proc : program.procs()) {
        for (const BasicBlock &block : proc.blocks()) {
            for (const CallSite &site : block.calls) {
                if (site.callee < program.numProcs())
                    referenced[site.callee] = true;
            }
        }
    }
    for (const Procedure &proc : program.procs()) {
        if (proc.id() >= referenced.size() || referenced[proc.id()])
            continue;
        const Weight weight = proc.totalEdgeWeight();
        if (weight > 0) {
            std::ostringstream msg;
            msg << "procedure carries profile weight " << weight
                << " but no call site references it and it is not main";
            emit(sink, "prof.uncalled-proc",
                 {proc.id(), kNoBlock, kNoEdge}, msg.str(),
                 "call/return pairing is broken: executed procedures "
                 "must be reachable through the call graph");
        }
    }
}

/**
 * prof.degenerate: a program with edges but no profile weight at all.
 * Every aligner tolerates this (all chains tie at weight zero and the
 * structural order wins), but the resulting layout optimizes nothing, so
 * surface it as a Note instead of accepting it silently — aggressive
 * sampling (profile/degrade.h) is the realistic way to end up here.
 */
void
lintDegenerateProfile(const Program &program, std::vector<Diagnostic> &sink)
{
    std::size_t num_edges = 0;
    Weight total = 0;
    for (const Procedure &proc : program.procs()) {
        num_edges += proc.numEdges();
        total += proc.totalEdgeWeight();
    }
    if (num_edges > 0 && total == 0) {
        emit(sink, "prof.degenerate", {kNoProc, kNoBlock, kNoEdge},
             "profile is completely empty (every edge weight is zero)",
             "alignment degenerates to the structural block order; "
             "re-profile or sample less aggressively");
    }
}

void
lintBiasRange(const Program &program, std::vector<Diagnostic> &sink)
{
    for (const Procedure &proc : program.procs()) {
        for (std::uint32_t i = 0; i < proc.numEdges(); ++i) {
            const Edge &edge = proc.edge(i);
            if (edge.bias < 0.0 || edge.bias > 1.0) {
                std::ostringstream msg;
                msg << "edge " << edge.src << " -> " << edge.dst
                    << " has bias " << edge.bias
                    << " outside the probability range [0, 1]";
                emit(sink, "prof.bias-range", {proc.id(), edge.src, i},
                     msg.str(),
                     "biases are per-edge traversal probabilities");
            }
        }
    }
}

}  // namespace

void
lintProfile(const Program &program, const LintOptions &options,
            std::vector<Diagnostic> &sink)
{
    lintFlowConservation(program, options, sink);
    lintLoopFlow(program, options, sink);
    lintDegenerateProfile(program, sink);
    lintUnreachableWeight(program, sink);
    lintUncalledProcWeight(program, sink);
    lintBiasRange(program, sink);
}

}  // namespace balign
