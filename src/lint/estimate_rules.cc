/**
 * @file
 * est.* rules: self-checks of the static profile estimator.
 *
 * Unlike the other rule groups these do not inspect the program's own
 * profile — they run estimate/estimate.h on a COPY and verify what it
 * synthesized: per-block transition probabilities must be distributions
 * (est.prob), the pushed integer profile must conserve flow within the
 * stranding budget (est.flow — the same invariant prof.* demands of
 * measured profiles, re-checked at the source so an estimator bug is
 * attributed to the estimator, not the profile), and irreducible-region
 * fallbacks are surfaced as notes (est.fallback) so a user knows the
 * closed form did not apply.
 */

#include <cmath>
#include <sstream>

#include "estimate/estimate.h"
#include "lint/emit.h"
#include "lint/rules.h"

namespace balign {

namespace {

using lint_detail::emit;

constexpr double kDistributionTolerance = 1e-9;

void
checkProbabilities(const Program &program, const EstimateReport &report,
                   std::vector<Diagnostic> &sink)
{
    for (ProcId p = 0; p < program.numProcs(); ++p) {
        const Procedure &proc = program.proc(p);
        if (p >= report.edgeProbs.size())
            continue;
        const std::vector<double> &probs = report.edgeProbs[p];
        for (const BasicBlock &block : proc.blocks()) {
            double sum = 0.0;
            std::size_t valid = 0;
            bool in_range = true;
            for (const std::uint32_t e : block.outEdges) {
                if (e >= probs.size() ||
                    proc.edge(e).dst >= proc.numBlocks())
                    continue;
                ++valid;
                sum += probs[e];
                if (probs[e] < 0.0 || probs[e] > 1.0)
                    in_range = false;
            }
            if (valid == 0)
                continue;
            if (!in_range) {
                emit(sink, "est.prob", {p, block.id, kNoEdge},
                     "estimated transition probability outside [0, 1]",
                     "heuristic combination must clamp into the open "
                     "probability interval");
            } else if (std::abs(sum - 1.0) > kDistributionTolerance) {
                std::ostringstream msg;
                msg << "out-edge probabilities sum to " << sum
                    << " instead of 1";
                emit(sink, "est.prob", {p, block.id, kNoEdge}, msg.str(),
                     "every activation leaving a block must take exactly "
                     "one out-edge");
            }
        }
    }
}

void
checkFlow(const Program &estimated, const LintOptions &options,
          const EstimateReport &report, std::vector<Diagnostic> &sink)
{
    Weight total_excess = 0;
    for (const Procedure &proc : estimated.procs()) {
        for (const BasicBlock &block : proc.blocks()) {
            if (block.id == proc.entry() || block.outEdges.empty())
                continue;
            Weight in = 0, out = 0;
            for (const std::uint32_t e : block.inEdges) {
                if (e < proc.numEdges())
                    in += proc.edge(e).weight;
            }
            for (const std::uint32_t e : block.outEdges) {
                if (e < proc.numEdges())
                    out += proc.edge(e).weight;
            }
            if (out > in) {
                std::ostringstream msg;
                msg << "estimated profile emits more flow than it "
                       "receives (inflow="
                    << in << ", outflow=" << out << ")";
                emit(sink, "est.flow", {proc.id(), block.id, kNoEdge},
                     msg.str(),
                     "the flow push must re-apportion exactly the "
                     "received integer flow");
                continue;
            }
            total_excess += in - out;
        }
    }
    if (total_excess > options.flowSlack) {
        std::ostringstream msg;
        msg << "estimated profile strands " << total_excess
            << " units program-wide (reported stranded "
            << report.totalStranded << "), above the allowance of "
            << options.flowSlack;
        emit(sink, "est.flow", {kNoProc, kNoBlock, kNoEdge}, msg.str(),
             "the entry-count rescale loop must keep stranded flow "
             "within the lint slack");
    }
}

void
noteFallbacks(const Program &program, const EstimateReport &report,
              std::vector<Diagnostic> &sink)
{
    for (const ProcEstimate &pe : report.procs) {
        if (!pe.irreducibleFallback || pe.proc >= program.numProcs())
            continue;
        std::ostringstream msg;
        msg << "procedure '" << program.proc(pe.proc).name()
            << "' has an irreducible region; frequencies come from the "
               "bounded-iteration fallback, not the closed form";
        emit(sink, "est.fallback", {pe.proc, kNoBlock, kNoEdge}, msg.str(),
             "cfg.irreducible names the offending retreating edges");
    }
}

}  // namespace

void
lintEstimate(const Program &program, const LintOptions &options,
             std::vector<Diagnostic> &sink)
{
    Program estimated = program;
    const EstimateReport report = estimateProfile(estimated);
    checkProbabilities(estimated, report, sink);
    checkFlow(estimated, options, report, sink);
    noteFallbacks(estimated, report, sink);
}

}  // namespace balign
