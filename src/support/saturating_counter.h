/**
 * @file
 * N-bit saturating up/down counter, the basic predictor state element.
 *
 * The paper's dynamic predictors (direct-mapped PHT, correlation PHT, BTB
 * entries) all use 2-bit saturating counters; the Alpha 21064 line-predictor
 * model uses a 1-bit counter. The width is a runtime parameter so sweeps can
 * explore other widths.
 */

#ifndef BALIGN_SUPPORT_SATURATING_COUNTER_H
#define BALIGN_SUPPORT_SATURATING_COUNTER_H

#include <cassert>
#include <cstdint>

namespace balign {

/**
 * A saturating counter of @p bits bits. The "taken" prediction is the top
 * half of the range; the counter initializes weakly-not-taken by default.
 */
class SaturatingCounter
{
  public:
    /**
     * @param bits counter width in bits, 1..8
     * @param initial initial value; defaults to the weakly-not-taken state
     *        (max/2, i.e. 1 for a 2-bit counter)
     */
    explicit SaturatingCounter(unsigned bits = 2, unsigned initial = kDefault)
        : max_((1u << bits) - 1),
          value_(initial == kDefault ? max_ / 2 : initial)
    {
        assert(bits >= 1 && bits <= 8);
        if (value_ > max_)
            value_ = max_;
    }

    /// Predicted direction: taken when in the upper half of the range.
    bool taken() const { return value_ > max_ / 2; }

    /// Update toward the observed outcome.
    void
    update(bool was_taken)
    {
        if (was_taken) {
            if (value_ < max_)
                ++value_;
        } else {
            if (value_ > 0)
                --value_;
        }
    }

    /// Reset to a specific value (clamped to range).
    void
    reset(unsigned value)
    {
        value_ = value > max_ ? max_ : value;
    }

    /// Set to the weakest state agreeing with @p was_taken.
    void
    resetWeak(bool was_taken)
    {
        value_ = was_taken ? max_ / 2 + 1 : max_ / 2;
    }

    unsigned value() const { return value_; }
    unsigned max() const { return max_; }

  private:
    static constexpr unsigned kDefault = 0xFFFFFFFFu;

    unsigned max_;
    unsigned value_;
};

/**
 * Branchless counterpart of SaturatingCounter::update() for
 * structure-of-arrays predictor tables (sim/batch_replay.cc): the
 * compare-and-step becomes an arithmetic clamp, which compiles to an add
 * plus two conditional moves instead of a data-dependent branch. Produces
 * the identical next state for every value in [0, max].
 */
inline std::uint8_t
saturatingUpdate(std::uint8_t value, std::uint8_t max, bool taken)
{
    const int stepped = static_cast<int>(value) + (taken ? 1 : -1);
    const int floored = stepped < 0 ? 0 : stepped;
    const int ceiling = static_cast<int>(max);
    return static_cast<std::uint8_t>(floored > ceiling ? ceiling : floored);
}

/// Direction a raw counter value predicts: the upper half of the range is
/// taken, matching SaturatingCounter::taken().
inline bool
saturatingTaken(std::uint8_t value, std::uint8_t max)
{
    return value > max / 2;
}

}  // namespace balign

#endif  // BALIGN_SUPPORT_SATURATING_COUNTER_H
