/**
 * @file
 * Fundamental scalar types shared across the balign library.
 *
 * All instruction addressing is in units of 4-byte instruction words,
 * matching the Alpha AXP's fixed-width encoding that the paper's OM-based
 * implementation targeted. Byte addresses, where a hardware structure needs
 * them (e.g. PHT indexing), are derived by shifting.
 */

#ifndef BALIGN_SUPPORT_TYPES_H
#define BALIGN_SUPPORT_TYPES_H

#include <cstdint>
#include <limits>

namespace balign {

/// Instruction-word address within the laid-out program text.
using Addr = std::uint64_t;

/// Identifier of a basic block within its procedure (dense, 0-based).
using BlockId = std::uint32_t;

/// Identifier of a procedure within its program (dense, 0-based).
using ProcId = std::uint32_t;

/// Execution count of an edge or block (profile weight).
using Weight = std::uint64_t;

/// Sentinel for "no block".
inline constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();

/// Sentinel for "no procedure".
inline constexpr ProcId kNoProc = std::numeric_limits<ProcId>::max();

/// Sentinel for "no address".
inline constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/// Bytes per instruction word (Alpha AXP fixed encoding).
inline constexpr unsigned kInstrBytes = 4;

}  // namespace balign

#endif  // BALIGN_SUPPORT_TYPES_H
