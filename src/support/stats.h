/**
 * @file
 * Small statistics helpers used by the evaluators and bench harnesses.
 */

#ifndef BALIGN_SUPPORT_STATS_H
#define BALIGN_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace balign {

/**
 * Streaming accumulator for mean / min / max / variance (Welford).
 */
class Accumulator
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /// Sample variance (n-1 denominator); 0 when fewer than two samples.
    double variance() const;

    /// Sample standard deviation.
    double stddev() const;

    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Counts how many of the heaviest items are needed to cover a fraction of
 * the total weight — the paper's Q-50/Q-90/Q-99/Q-100 branch-site metric
 * (Table 2).
 *
 * @param weights per-item weights (will be copied and sorted descending)
 * @param fraction coverage target in (0, 1]
 * @return the minimal number of heaviest items whose weights sum to at
 *         least fraction * total; items with zero weight never count except
 *         that Q-100 counts only items with non-zero weight.
 */
std::size_t coverageCount(const std::vector<std::uint64_t> &weights,
                          double fraction);

/// Ratio helper returning 0 when the denominator is 0.
double safeRatio(double num, double den);

/// Percentage helper returning 0 when the denominator is 0.
double pct(double num, double den);

}  // namespace balign

#endif  // BALIGN_SUPPORT_STATS_H
