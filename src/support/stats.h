/**
 * @file
 * Small statistics helpers used by the evaluators and bench harnesses,
 * plus the per-phase wall-time instrumentation for the experiment runner.
 */

#ifndef BALIGN_SUPPORT_STATS_H
#define BALIGN_SUPPORT_STATS_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace balign {

/**
 * Streaming accumulator for mean / min / max / variance (Welford).
 */
class Accumulator
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /// Sample variance (n-1 denominator); 0 when fewer than two samples.
    double variance() const;

    /// Sample standard deviation.
    double stddev() const;

    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Counts how many of the heaviest items are needed to cover a fraction of
 * the total weight — the paper's Q-50/Q-90/Q-99/Q-100 branch-site metric
 * (Table 2).
 *
 * @param weights per-item weights (will be copied and sorted descending)
 * @param fraction coverage target in (0, 1]
 * @return the minimal number of heaviest items whose weights sum to at
 *         least fraction * total; items with zero weight never count except
 *         that Q-100 counts only items with non-zero weight.
 */
std::size_t coverageCount(const std::vector<std::uint64_t> &weights,
                          double fraction);

/// Ratio helper returning 0 when the denominator is 0.
double safeRatio(double num, double den);

/// Percentage helper returning 0 when the denominator is 0.
double pct(double num, double den);

/**
 * Thread-safe accumulator of wall-clock seconds per named phase
 * (generate / profile / align / replay for the experiment runner).
 *
 * Accumulated CPU-seconds across threads can exceed elapsed wall time; the
 * runner reports both so trajectories can compute parallel efficiency.
 * Phases keep first-insertion order in json().
 */
class PhaseTimes
{
  public:
    /// Adds @p seconds to @p phase (creating the phase on first use).
    void add(const std::string &phase, double seconds);

    /// Accumulated seconds for @p phase; 0 if never recorded.
    double seconds(const std::string &phase) const;

    /// Phases as a one-line JSON object: {"generate":1.234,...}.
    std::string json() const;

  private:
    mutable std::mutex mutex_;
    std::vector<std::pair<std::string, double>> phases_;
};

/**
 * RAII timer adding the elapsed wall time to a PhaseTimes on destruction.
 * A null @p times makes the timer a no-op.
 */
class ScopedPhaseTimer
{
  public:
    ScopedPhaseTimer(PhaseTimes *times, const char *phase)
        : times_(times), phase_(phase),
          start_(std::chrono::steady_clock::now())
    {
    }

    ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
    ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

    ~ScopedPhaseTimer()
    {
        if (times_ == nullptr)
            return;
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start_;
        times_->add(phase_, elapsed.count());
    }

  private:
    PhaseTimes *times_;
    const char *phase_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace balign

#endif  // BALIGN_SUPPORT_STATS_H
