/**
 * @file
 * ASCII table writer used by the bench harnesses to print paper-style
 * tables (Tables 2, 3, 4 and the Figure 4 series).
 */

#ifndef BALIGN_SUPPORT_TABLE_H
#define BALIGN_SUPPORT_TABLE_H

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace balign {

/**
 * Column-aligned text table. Columns are right-aligned except the first,
 * which is left-aligned (program names). Cells are strings; numeric
 * formatting helpers are provided.
 */
class Table
{
  public:
    /// Creates a table with the given column headers.
    explicit Table(std::vector<std::string> headers);

    // Row-building chains return *this; accidental copies would silently
    // drop rows, so forbid them.
    Table(const Table &) = delete;
    Table &operator=(const Table &) = delete;
    Table(Table &&) = default;
    Table &operator=(Table &&) = default;

    /// Starts a new row; subsequent cell() calls fill it left to right.
    Table &row();

    /// Appends a string cell to the current row.
    Table &cell(const std::string &text);

    /// Appends a fixed-point numeric cell with @p decimals decimals.
    Table &cell(double value, int decimals = 3);

    /// Appends an integer cell, optionally with thousands separators.
    Table &cell(std::uint64_t value, bool separators = false);

    /// Appends a horizontal separator row.
    Table &separator();

    /// Renders the table.
    void print(std::ostream &os) const;

    /// Renders the table to a string.
    std::string str() const;

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Formats an integer with comma thousands separators ("5,240,969").
std::string withCommas(std::uint64_t value);

/// Formats a double with fixed decimals.
std::string fixed(double value, int decimals);

}  // namespace balign

#endif  // BALIGN_SUPPORT_TABLE_H
