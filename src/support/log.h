/**
 * @file
 * Status and error reporting, following the gem5 convention:
 *
 *  - inform(): status the user should see, no error connotation.
 *  - warn():   something questionable but survivable.
 *  - fatal():  user error (bad configuration/arguments); exits cleanly.
 *  - panic():  internal invariant violation (a balign bug); aborts.
 */

#ifndef BALIGN_SUPPORT_LOG_H
#define BALIGN_SUPPORT_LOG_H

#include <cstdarg>
#include <string>

namespace balign {

/// Verbosity control: when false, inform() is suppressed (warn and errors
/// always print).
void setVerbose(bool verbose);
bool verbose();

/// Informational message (printf-style).
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/// Warning message (printf-style).
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/// User-level error: prints the message and exits with status 1.
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Internal error: prints the message and aborts.
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace balign

#endif  // BALIGN_SUPPORT_LOG_H
