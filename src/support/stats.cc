#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace balign {

void
Accumulator::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        min_ = max_ = x;
        mean_ = x;
        m2_ = 0.0;
        return;
    }
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
Accumulator::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

std::size_t
coverageCount(const std::vector<std::uint64_t> &weights, double fraction)
{
    std::vector<std::uint64_t> sorted;
    sorted.reserve(weights.size());
    for (auto w : weights) {
        if (w > 0)
            sorted.push_back(w);
    }
    if (sorted.empty())
        return 0;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    __uint128_t total = 0;
    for (auto w : sorted)
        total += w;
    if (fraction >= 1.0)
        return sorted.size();
    const auto target = static_cast<__uint128_t>(
        std::ceil(static_cast<double>(total) * fraction));
    __uint128_t acc = 0;
    std::size_t count = 0;
    for (auto w : sorted) {
        acc += w;
        ++count;
        if (acc >= target)
            break;
    }
    return count;
}

double
safeRatio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

double
pct(double num, double den)
{
    return 100.0 * safeRatio(num, den);
}

void
PhaseTimes::add(const std::string &phase, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &entry : phases_) {
        if (entry.first == phase) {
            entry.second += seconds;
            return;
        }
    }
    phases_.emplace_back(phase, seconds);
}

double
PhaseTimes::seconds(const std::string &phase) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &entry : phases_) {
        if (entry.first == phase)
            return entry.second;
    }
    return 0.0;
}

std::string
PhaseTimes::json() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{";
    char buffer[64];
    for (std::size_t i = 0; i < phases_.size(); ++i) {
        if (i > 0)
            out += ",";
        std::snprintf(buffer, sizeof(buffer), "\"%s\":%.6f",
                      phases_[i].first.c_str(), phases_[i].second);
        out += buffer;
    }
    out += "}";
    return out;
}

}  // namespace balign
