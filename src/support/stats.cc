#include "support/stats.h"

#include <algorithm>
#include <cmath>

namespace balign {

void
Accumulator::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        min_ = max_ = x;
        mean_ = x;
        m2_ = 0.0;
        return;
    }
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
Accumulator::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

std::size_t
coverageCount(const std::vector<std::uint64_t> &weights, double fraction)
{
    std::vector<std::uint64_t> sorted;
    sorted.reserve(weights.size());
    for (auto w : weights) {
        if (w > 0)
            sorted.push_back(w);
    }
    if (sorted.empty())
        return 0;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    __uint128_t total = 0;
    for (auto w : sorted)
        total += w;
    if (fraction >= 1.0)
        return sorted.size();
    const auto target = static_cast<__uint128_t>(
        std::ceil(static_cast<double>(total) * fraction));
    __uint128_t acc = 0;
    std::size_t count = 0;
    for (auto w : sorted) {
        acc += w;
        ++count;
        if (acc >= target)
            break;
    }
    return count;
}

double
safeRatio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

double
pct(double num, double den)
{
    return 100.0 * safeRatio(num, den);
}

}  // namespace balign
