#include "support/rng.h"

#include <cassert>
#include <cmath>

namespace balign {

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : s_)
        word = sm.next();
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    assert(bound > 0);
    // Lemire's multiply-shift rejection method, unbiased.
    std::uint64_t x = nextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = nextU64();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

std::uint64_t
Rng::nextGeometric(double p, std::uint64_t cap)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return cap;
    const double u = nextDouble();
    const double draw = std::floor(std::log1p(-u) / std::log1p(-p));
    if (draw >= static_cast<double>(cap))
        return cap;
    return static_cast<std::uint64_t>(draw);
}

std::size_t
Rng::nextWeighted(const double *weights, std::size_t n)
{
    assert(n >= 1);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        total += weights[i];
    if (total <= 0.0)
        return n - 1;
    double point = nextDouble() * total;
    for (std::size_t i = 0; i < n; ++i) {
        point -= weights[i];
        if (point < 0.0)
            return i;
    }
    return n - 1;
}

Rng
Rng::split()
{
    return Rng(nextU64());
}

}  // namespace balign
