/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The trace walker and the workload generator must be exactly reproducible
 * across runs and platforms, so we implement xoshiro256** (seeded through
 * SplitMix64) rather than relying on implementation-defined std::mt19937
 * distributions. All distribution helpers here are fully specified.
 */

#ifndef BALIGN_SUPPORT_RNG_H
#define BALIGN_SUPPORT_RNG_H

#include <cstdint>

namespace balign {

/**
 * SplitMix64: used to expand a 64-bit seed into xoshiro state. Also a decent
 * standalone mixing function for hashing.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /// Next 64 pseudo-random bits.
    std::uint64_t next();

  private:
    std::uint64_t state_;
};

/**
 * xoshiro256**: fast, high-quality 64-bit PRNG with 256 bits of state.
 *
 * Deterministic for a given seed; no global state.
 */
class Rng
{
  public:
    /// Seeds the four state words via SplitMix64.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /// Uniform 64-bit value.
    std::uint64_t nextU64();

    /// Uniform value in [0, bound) using Lemire's unbiased method.
    std::uint64_t nextBounded(std::uint64_t bound);

    /// Uniform double in [0, 1) with 53 bits of precision.
    double nextDouble();

    /// Bernoulli draw: true with probability @p p (clamped to [0,1]).
    bool nextBool(double p);

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /**
     * Geometric draw: number of failures before the first success with
     * success probability @p p in (0, 1]; capped at @p cap.
     */
    std::uint64_t nextGeometric(double p, std::uint64_t cap);

    /**
     * Draws an index in [0, n) proportional to the given non-negative
     * weights. Returns n - 1 if all weights are zero.
     *
     * @param weights pointer to n weights
     * @param n number of weights (must be >= 1)
     */
    std::size_t nextWeighted(const double *weights, std::size_t n);

    /// Fork an independent stream (for parallel sub-generators).
    Rng split();

  private:
    std::uint64_t s_[4];
};

}  // namespace balign

#endif  // BALIGN_SUPPORT_RNG_H
