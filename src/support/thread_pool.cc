#include "support/thread_pool.h"

#include <algorithm>

namespace balign {

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned workers = threads > 1 ? threads - 1 : 0;
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::unqueue(const std::shared_ptr<Job> &job)
{
    const auto it = std::find(queue_.begin(), queue_.end(), job);
    if (it != queue_.end())
        queue_.erase(it);
}

void
ThreadPool::runItem(std::unique_lock<std::mutex> &lock,
                    const std::shared_ptr<Job> &job, std::size_t index)
{
    lock.unlock();
    std::exception_ptr error;
    try {
        (*job->fn)(index);
    } catch (...) {
        error = std::current_exception();
    }
    lock.lock();
    if (error) {
        if (!job->error)
            job->error = error;
        // Skip the unclaimed remainder; claimed items drain naturally.
        job->next = job->n;
        unqueue(job);
    }
    --job->active;
    if (job->next >= job->n && job->active == 0)
        job->done.notify_all();
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_)
            return;
        const std::shared_ptr<Job> job = queue_.front();
        const std::size_t index = job->next++;
        ++job->active;
        if (job->next >= job->n)
            queue_.pop_front();
        runItem(lock, job, index);
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    const auto job = std::make_shared<Job>();
    job->n = n;
    job->fn = &fn;

    std::unique_lock<std::mutex> lock(mutex_);
    if (!workers_.empty() && n > 1) {
        queue_.push_back(job);
        work_.notify_all();
    } else {
        // Serial pool (or single item): the caller runs everything below.
        job->next = 0;
    }

    // The caller participates until no unclaimed items remain.
    while (job->next < job->n) {
        const std::size_t index = job->next++;
        ++job->active;
        if (job->next >= job->n)
            unqueue(job);
        runItem(lock, job, index);
    }
    job->done.wait(lock,
                   [&] { return job->next >= job->n && job->active == 0; });
    if (job->error)
        std::rethrow_exception(job->error);
}

}  // namespace balign
