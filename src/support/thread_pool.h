/**
 * @file
 * Work-sharing thread pool for the parallel experiment runner.
 *
 * The pool exposes one primitive, parallelFor(n, fn), which runs fn(i) for
 * every i in [0, n) across the pool's workers and the calling thread, and
 * returns when all items have finished. Because the caller always
 * participates, parallelFor may be invoked from inside a pool task (nested
 * parallelism) without risk of deadlock: the inner loop makes progress on
 * the caller's own thread even when every worker is busy.
 *
 * Determinism contract: the pool only schedules; it never reorders results.
 * Callers that write item i's output to slot i of a pre-sized vector get
 * results that are independent of thread count and scheduling, which is how
 * the experiment runner guarantees serial/parallel equivalence.
 *
 * A pool constructed with 1 thread spawns no workers at all; parallelFor
 * then degenerates to a plain serial loop on the calling thread.
 */

#ifndef BALIGN_SUPPORT_THREAD_POOL_H
#define BALIGN_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace balign {

class ThreadPool
{
  public:
    /// Creates a pool that runs work on @p threads threads total (the
    /// calling thread plus threads - 1 workers). @p threads is clamped to
    /// at least 1.
    explicit ThreadPool(unsigned threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /// Joins all workers. No parallelFor call may be in flight.
    ~ThreadPool();

    /// Total threads participating in parallelFor (workers + caller).
    unsigned threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

    /**
     * Runs fn(i) for each i in [0, n); blocks until every item completed.
     * Items are claimed dynamically (self-balancing). The first exception
     * thrown by any item is rethrown here after the remaining claimed items
     * drain; unclaimed items are skipped once an exception is recorded.
     *
     * Safe to call concurrently from multiple threads and from inside a
     * running item (nested use).
     */
    void parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn);

  private:
    /// One parallelFor invocation: an index range shared by all threads.
    struct Job
    {
        std::size_t next = 0;    ///< next unclaimed index (guarded by mutex_)
        std::size_t n = 0;       ///< total items
        std::size_t active = 0;  ///< items currently executing
        const std::function<void(std::size_t)> *fn = nullptr;
        std::exception_ptr error;
        std::condition_variable done;
    };

    void workerLoop();
    /// Runs one claimed item outside the lock; returns with the lock held.
    void runItem(std::unique_lock<std::mutex> &lock,
                 const std::shared_ptr<Job> &job, std::size_t index);
    void unqueue(const std::shared_ptr<Job> &job);

    std::mutex mutex_;
    std::condition_variable work_;
    std::deque<std::shared_ptr<Job>> queue_;  ///< jobs with unclaimed items
    std::vector<std::thread> workers_;
    bool stop_ = false;
};

}  // namespace balign

#endif  // BALIGN_SUPPORT_THREAD_POOL_H
