#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/log.h"

namespace balign {

std::string
withCommas(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    std::size_t lead = digits.size() % 3;
    if (lead == 0)
        lead = 3;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i - lead) % 3 == 0 && i >= lead)
            out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

std::string
fixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

Table &
Table::row()
{
    rows_.emplace_back();
    rows_.back().reserve(headers_.size());
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    if (rows_.empty())
        panic("Table::cell called before Table::row");
    rows_.back().push_back(text);
    return *this;
}

Table &
Table::cell(double value, int decimals)
{
    return cell(fixed(value, decimals));
}

Table &
Table::cell(std::uint64_t value, bool separators)
{
    return cell(separators ? withCommas(value) : std::to_string(value));
}

Table &
Table::separator()
{
    rows_.emplace_back();  // empty row marks a separator
    return *this;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &text =
                c < cells.size() ? cells[c] : std::string();
            if (c == 0) {
                os << text;
                os << std::string(widths[c] - text.size(), ' ');
            } else {
                os << "  ";
                os << std::string(widths[c] - text.size(), ' ');
                os << text;
            }
        }
        os << '\n';
    };

    auto print_rule = [&] {
        std::size_t total = 0;
        for (std::size_t c = 0; c < widths.size(); ++c)
            total += widths[c] + (c == 0 ? 0 : 2);
        os << std::string(total, '-') << '\n';
    };

    print_line(headers_);
    print_rule();
    for (const auto &row : rows_) {
        if (row.empty())
            print_rule();
        else
            print_line(row);
    }
}

std::string
Table::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

}  // namespace balign
