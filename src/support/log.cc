#include "support/log.h"

#include <cstdio>
#include <cstdlib>

namespace balign {

namespace {

bool verbose_flag = true;

void
vreport(const char *tag, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

}  // namespace

void
setVerbose(bool verbose)
{
    verbose_flag = verbose;
}

bool
verbose()
{
    return verbose_flag;
}

void
inform(const char *fmt, ...)
{
    if (!verbose_flag)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

}  // namespace balign
