#include "disasm/checkobj.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "emit/elf.h"

namespace balign {

namespace {

// Writer conventions restated from the documented object format (not
// imported from elf.cc): symtab = null + section symbol + one GLOBAL
// STT_FUNC per procedure, calls relocated via R_X86_64_PLT32 one byte
// into the instruction with addend -4.
constexpr std::uint32_t kFirstProcSymbol = 2;
constexpr std::uint32_t kRelocPlt32 = 4;
constexpr std::int64_t kCallAddend = -4;
constexpr std::uint16_t kMachineNone = 0;
constexpr std::uint16_t kMachineX86_64 = 62;

template <typename... Args>
std::string
msg(Args &&...args)
{
    std::ostringstream out;
    (out << ... << args);
    return out.str();
}

std::string
renderSuccs(const std::vector<std::uint64_t> &succs)
{
    std::ostringstream out;
    out << '{';
    for (std::size_t i = 0; i < succs.size(); ++i)
        out << (i ? ", " : "") << succs[i];
    out << '}';
    return out.str();
}

/**
 * Runs every obligation over one (program, relaxed, object) triple.
 * Checking never stops at the first failure: each obligation reports all
 * instances it can still meaningfully evaluate, and per-procedure checks
 * that depend on a clean decode are skipped only for procedures whose
 * decode actually failed.
 */
class ObjChecker
{
  public:
    ObjChecker(const Program &program, const RelaxedLayout &relaxed,
               const std::vector<std::uint8_t> &objectBytes)
        : program_(program), relaxed_(relaxed), objectBytes_(objectBytes)
    {
    }

    ObjCheckResult
    run()
    {
        if (!parseAndDecode())
            return std::move(result_);
        checkDecodeTotality();
        checkBranchTargets();
        checkRelocations();
        checkCfgIsomorphism();
        checkSizeAccounting();
        return std::move(result_);
    }

  private:
    void
    check(ObjObligation obligation)
    {
        ++result_.obligations[static_cast<std::size_t>(obligation)].checks;
    }

    void
    fail(ObjObligation obligation, ProcId proc, std::uint64_t byteAddr,
         std::string detail)
    {
        ++result_.obligations[static_cast<std::size_t>(obligation)].failures;
        result_.failures.push_back(
            ObjFailure{obligation, proc, byteAddr, std::move(detail)});
    }

    /// Procedures both sides agree exist (source procs == relaxed procs
    /// by construction; the object may disagree).
    std::size_t
    pairedProcs() const
    {
        return std::min(result_.disasm.procs.size(),
                        static_cast<std::size_t>(program_.numProcs()));
    }

    bool
    parseAndDecode()
    {
        check(ObjObligation::DecodeTotality);
        elf_ = parseElfObject(objectBytes_);
        if (!elf_.ok) {
            fail(ObjObligation::DecodeTotality, kNoProc, kNoAddr,
                 msg("object does not parse: ", elf_.error));
            return false;
        }

        check(ObjObligation::DecodeTotality);
        const std::uint16_t expectMachine =
            relaxed_.model == EncodingModelKind::Variable ? kMachineX86_64
                                                          : kMachineNone;
        if (elf_.machine != expectMachine)
            fail(ObjObligation::DecodeTotality, kNoProc, kNoAddr,
                 msg("e_machine ", elf_.machine, " does not match the ",
                     encodingModelKindName(relaxed_.model),
                     " encoding model (expected ", expectMachine, ")"));

        // Decode under the layout's model regardless: a wrong e_machine
        // is already a failure, and forcing the model lets the remaining
        // obligations still report against the intended encoding.
        result_.disasm = disassembleObject(elf_, relaxed_.model);
        return true;
    }

    void
    checkDecodeTotality()
    {
        const Disassembly &disasm = result_.disasm;

        check(ObjObligation::DecodeTotality);
        if (disasm.procs.size() !=
            static_cast<std::size_t>(program_.numProcs()))
            fail(ObjObligation::DecodeTotality, kNoProc, kNoAddr,
                 msg("object defines ", disasm.procs.size(),
                     " function symbols, source has ", program_.numProcs(),
                     " procedures"));

        // Procedure ranges must tile .text exactly: cumulative bases, no
        // overlap, no gap, and nothing after the last procedure.
        std::uint64_t offset = 0;
        for (std::size_t p = 0; p < disasm.procs.size(); ++p) {
            const DecodedProc &proc = disasm.procs[p];
            const auto id = static_cast<ProcId>(p);

            check(ObjObligation::DecodeTotality);
            if (proc.base != offset)
                fail(ObjObligation::DecodeTotality, id, proc.base,
                     msg("procedure range starts at byte ", proc.base,
                         ", previous procedure ends at byte ", offset,
                         (proc.base < offset ? " (overlap)" : " (gap)")));
            offset = proc.base + proc.size;

            check(ObjObligation::DecodeTotality);
            if (!proc.ok)
                fail(ObjObligation::DecodeTotality, id, proc.base,
                     proc.error);

            if (p < pairedProcs()) {
                check(ObjObligation::DecodeTotality);
                const std::string &want = program_.proc(id).name();
                if (proc.name != want)
                    fail(ObjObligation::DecodeTotality, id, proc.base,
                         msg("symbol name \"", proc.name,
                             "\" does not match procedure \"", want, '"'));

                check(ObjObligation::DecodeTotality);
                if (proc.symbol != kFirstProcSymbol + p)
                    fail(ObjObligation::DecodeTotality, id, proc.base,
                         msg("symbol table index ", proc.symbol,
                             ", expected ", kFirstProcSymbol + p));
            }
        }

        check(ObjObligation::DecodeTotality);
        if (offset != disasm.textBytes)
            fail(ObjObligation::DecodeTotality, kNoProc, offset,
                 msg("procedure ranges cover ", offset, " of ",
                     disasm.textBytes, " .text bytes (trailing garbage)"));
    }

    void
    checkBranchTargets()
    {
        for (std::size_t p = 0; p < result_.disasm.procs.size(); ++p) {
            const DecodedProc &proc = result_.disasm.procs[p];
            if (!proc.ok)
                continue;
            const auto id = static_cast<ProcId>(p);

            std::set<std::uint64_t> boundaries;
            for (const DecodedInstr &instr : proc.instrs)
                boundaries.insert(instr.addr);

            for (const DecodedInstr &instr : proc.instrs) {
                if (!instr.hasTarget)
                    continue;
                check(ObjObligation::BranchTarget);
                if (instr.target < proc.base ||
                    instr.target >= proc.base + proc.size) {
                    fail(ObjObligation::BranchTarget, id, instr.addr,
                         msg(instrClassName(instr.cls), " displacement ",
                             instr.disp, " targets byte ", instr.target,
                             " outside the procedure range [", proc.base,
                             ", ", proc.base + proc.size, ")"));
                } else if (!boundaries.count(instr.target)) {
                    fail(ObjObligation::BranchTarget, id, instr.addr,
                         msg(instrClassName(instr.cls), " displacement ",
                             instr.disp, " targets byte ", instr.target,
                             ", which is not a decoded instruction "
                             "boundary"));
                }
            }
        }
    }

    void
    checkRelocations()
    {
        // Source truth: which byte address carries a call to which callee.
        std::map<std::uint64_t, ProcId> callees;
        for (const RelaxedInstr &slot : relaxed_.instrs)
            if (slot.cls == InstrClass::Call)
                callees.emplace(slot.byteAddr, slot.callee);

        std::map<std::uint64_t, std::vector<const ElfRelocation *>> byOffset;
        for (const ElfRelocation &reloc : elf_.relocations)
            byOffset[reloc.offset].push_back(&reloc);

        std::set<std::uint64_t> consumed;
        for (std::size_t p = 0; p < pairedProcs(); ++p) {
            const DecodedProc &proc = result_.disasm.procs[p];
            if (!proc.ok)
                continue;
            const auto id = static_cast<ProcId>(p);

            for (const DecodedInstr &instr : proc.instrs) {
                if (instr.cls != InstrClass::Call)
                    continue;
                check(ObjObligation::RelocCorrectness);
                const std::uint64_t field = instr.addr + 1;
                const auto it = byOffset.find(field);
                if (it == byOffset.end()) {
                    fail(ObjObligation::RelocCorrectness, id, instr.addr,
                         msg("call has no relocation at its displacement "
                             "field (byte ",
                             field, ')'));
                    continue;
                }
                consumed.insert(field);
                if (it->second.size() != 1) {
                    fail(ObjObligation::RelocCorrectness, id, instr.addr,
                         msg(it->second.size(),
                             " relocations at the call displacement field "
                             "(byte ",
                             field, "), expected exactly one"));
                    continue;
                }
                const ElfRelocation &reloc = *it->second.front();
                const std::string problem =
                    relocProblem(instr, reloc, callees);
                if (!problem.empty())
                    fail(ObjObligation::RelocCorrectness, id, instr.addr,
                         problem);
            }
        }

        for (const ElfRelocation &reloc : elf_.relocations) {
            if (consumed.count(reloc.offset))
                continue;
            check(ObjObligation::RelocCorrectness);
            fail(ObjObligation::RelocCorrectness, kNoProc, reloc.offset,
                 msg("relocation at byte ", reloc.offset,
                     " matches no decoded call displacement field"));
        }
    }

    /// Everything that must hold of one call's relocation; empty when it
    /// all does.
    std::string
    relocProblem(const DecodedInstr &call, const ElfRelocation &reloc,
                 const std::map<std::uint64_t, ProcId> &callees) const
    {
        if (reloc.type != kRelocPlt32)
            return msg("relocation type ", reloc.type,
                       ", expected R_X86_64_PLT32 (", kRelocPlt32, ')');
        if (reloc.addend != kCallAddend)
            return msg("relocation addend ", reloc.addend, ", expected ",
                       kCallAddend);
        if (call.disp != 0)
            return msg("relocated call displacement field holds ", call.disp,
                       ", expected zero (the relocation carries the "
                       "target)");
        const auto calleeIt = callees.find(call.addr);
        if (calleeIt == callees.end())
            return msg("no source call slot at byte ", call.addr);
        const ProcId callee = calleeIt->second;
        if (reloc.symbol != kFirstProcSymbol + callee)
            return msg("relocation names symbol ", reloc.symbol,
                       ", expected ", kFirstProcSymbol + callee,
                       " (callee procedure ", callee, ')');
        if (reloc.symbol < elf_.symbols.size() &&
            elf_.symbols[reloc.symbol].name != program_.proc(callee).name())
            return msg("relocation symbol \"",
                       elf_.symbols[reloc.symbol].name,
                       "\" does not name callee procedure \"",
                       program_.proc(callee).name(), '"');
        return {};
    }

    void
    checkCfgIsomorphism()
    {
        for (std::size_t p = 0; p < pairedProcs(); ++p) {
            const DecodedProc &proc = result_.disasm.procs[p];
            if (!proc.ok)
                continue;
            const auto id = static_cast<ProcId>(p);
            const RelaxedProc &rp = relaxed_.procs[p];

            const LiftedCfg decoded = liftCfg(cfgInstrsFromDecoded(proc),
                                              proc.base, proc.size);
            const LiftedCfg source =
                liftCfg(cfgInstrsFromRelaxed(relaxed_, id), rp.byteBase,
                        rp.byteSize);

            check(ObjObligation::CfgIsomorphism);
            if (!decoded.blocks.empty() &&
                decoded.blocks.front().addr != proc.base)
                fail(ObjObligation::CfgIsomorphism, id, proc.base,
                     msg("decoded entry block starts at byte ",
                         decoded.blocks.front().addr,
                         ", expected the procedure base ", proc.base));

            check(ObjObligation::CfgIsomorphism);
            if (decoded.blocks.size() != source.blocks.size()) {
                fail(ObjObligation::CfgIsomorphism, id, proc.base,
                     msg("decoded graph has ", decoded.blocks.size(),
                         " blocks, laid-out graph has ",
                         source.blocks.size()));
            }

            const std::size_t blocks =
                std::min(decoded.blocks.size(), source.blocks.size());
            for (std::size_t b = 0; b < blocks; ++b) {
                const LiftedBlock &got = decoded.blocks[b];
                const LiftedBlock &want = source.blocks[b];
                check(ObjObligation::CfgIsomorphism);
                if (got.addr != want.addr) {
                    fail(ObjObligation::CfgIsomorphism, id, got.addr,
                         msg("block ", b, " starts at byte ", got.addr,
                             ", laid-out graph expects byte ", want.addr));
                } else if (got.numInstrs != want.numInstrs) {
                    fail(ObjObligation::CfgIsomorphism, id, got.addr,
                         msg("block ", b, " decodes to ", got.numInstrs,
                             " instructions, laid-out graph expects ",
                             want.numInstrs));
                } else if (got.terminator != want.terminator) {
                    fail(ObjObligation::CfgIsomorphism, id, got.addr,
                         msg("block ", b, " terminates in ",
                             instrClassName(got.terminator),
                             ", laid-out graph expects ",
                             instrClassName(want.terminator)));
                } else if (got.succs != want.succs) {
                    fail(ObjObligation::CfgIsomorphism, id, got.addr,
                         msg("block ", b, " successors ",
                             renderSuccs(got.succs),
                             " differ from the laid-out graph's ",
                             renderSuccs(want.succs)));
                }
            }
        }
    }

    void
    checkSizeAccounting()
    {
        check(ObjObligation::SizeAccounting);
        if (result_.disasm.textBytes != relaxed_.totalBytes)
            fail(ObjObligation::SizeAccounting, kNoProc, kNoAddr,
                 msg(".text holds ", result_.disasm.textBytes,
                     " bytes, relaxation fixpoint accounts for ",
                     relaxed_.totalBytes));

        for (std::size_t p = 0; p < pairedProcs(); ++p) {
            const DecodedProc &proc = result_.disasm.procs[p];
            const auto id = static_cast<ProcId>(p);
            const RelaxedProc &rp = relaxed_.procs[p];

            check(ObjObligation::SizeAccounting);
            if (proc.base != rp.byteBase)
                fail(ObjObligation::SizeAccounting, id, proc.base,
                     msg("symbol value ", proc.base,
                         ", relaxed byte base ", rp.byteBase));

            check(ObjObligation::SizeAccounting);
            if (proc.size != rp.byteSize)
                fail(ObjObligation::SizeAccounting, id, proc.base,
                     msg("symbol size ", proc.size, ", relaxed byte size ",
                         rp.byteSize));

            if (!proc.ok)
                continue;

            check(ObjObligation::SizeAccounting);
            if (proc.instrs.size() != rp.numInstrs)
                fail(ObjObligation::SizeAccounting, id, proc.base,
                     msg("procedure decodes to ", proc.instrs.size(),
                         " instructions, relaxation placed ", rp.numInstrs));

            const std::size_t slots = std::min(
                proc.instrs.size(), static_cast<std::size_t>(rp.numInstrs));
            for (std::size_t i = 0; i < slots; ++i) {
                const DecodedInstr &got = proc.instrs[i];
                const RelaxedInstr &want =
                    relaxed_.instrs[rp.firstInstr + i];
                check(ObjObligation::SizeAccounting);
                if (got.addr != want.byteAddr) {
                    fail(ObjObligation::SizeAccounting, id, got.addr,
                         msg("instruction ", i, " decodes at byte ",
                             got.addr, ", relaxation placed it at byte ",
                             want.byteAddr));
                } else if (got.size != want.size) {
                    fail(ObjObligation::SizeAccounting, id, got.addr,
                         msg("instruction ", i, " decodes to ",
                             unsigned{got.size},
                             " bytes, relaxation sized it at ",
                             unsigned{want.size}));
                }
            }
        }
    }

    const Program &program_;
    const RelaxedLayout &relaxed_;
    const std::vector<std::uint8_t> &objectBytes_;
    ParsedElf elf_;
    ObjCheckResult result_;
};

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void
writeJsonString(const std::string &text, std::ostream &os)
{
    os << '"';
    for (const char c : text) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeOptionalId(const char *key, std::uint64_t value, std::uint64_t sentinel,
                std::ostream &os)
{
    os << '"' << key << "\":";
    if (value == sentinel)
        os << "null";
    else
        os << value;
}

}  // namespace

const char *
objObligationName(ObjObligation obligation)
{
    switch (obligation) {
      case ObjObligation::DecodeTotality: return "decode-totality";
      case ObjObligation::BranchTarget: return "branch-target";
      case ObjObligation::RelocCorrectness: return "reloc-correctness";
      case ObjObligation::CfgIsomorphism: return "cfg-isomorphism";
      case ObjObligation::SizeAccounting: return "size-accounting";
    }
    return "?";
}

const char *
objObligationSummary(ObjObligation obligation)
{
    switch (obligation) {
      case ObjObligation::DecodeTotality:
        return "the object parses, every procedure byte range decodes "
               "cleanly, and procedure ranges tile .text with no overlap "
               "or trailing garbage";
      case ObjObligation::BranchTarget:
        return "every decoded branch displacement lands inside its "
               "procedure on a decoded instruction boundary";
      case ObjObligation::RelocCorrectness:
        return "each decoded call carries exactly one R_X86_64_PLT32 "
               "relocation naming the source callee with addend -4 and a "
               "zero displacement field, and no relocation is left over";
      case ObjObligation::CfgIsomorphism:
        return "the basic-block graph lifted from the decoded bytes is "
               "identical to the graph lifted from the relaxed layout, "
               "entry first";
      case ObjObligation::SizeAccounting:
        return "byte totals, symbol values and sizes, and per-slot "
               "addresses and sizes agree with the relaxation fixpoint";
    }
    return "?";
}

std::size_t
ObjCheckResult::totalChecks() const
{
    std::size_t total = 0;
    for (const ObjObligationRecord &record : obligations)
        total += record.checks;
    return total;
}

std::string
formatObjFailure(const ObjFailure &failure)
{
    std::ostringstream out;
    out << "check-obj[" << objObligationName(failure.obligation) << ']';
    if (failure.proc != kNoProc)
        out << " proc=" << failure.proc;
    if (failure.byteAddr != kNoAddr)
        out << " byte=" << failure.byteAddr;
    out << ": " << failure.detail;
    return out.str();
}

ObjCheckResult
checkObject(const Program &program, const RelaxedLayout &relaxed,
            const std::vector<std::uint8_t> &objectBytes)
{
    return ObjChecker(program, relaxed, objectBytes).run();
}

void
writeObjCertificateJson(const ObjCertificate &certificate, std::ostream &os)
{
    const ObjCheckResult &result = certificate.result;
    os << "{\"schema_version\":" << kCheckObjSchemaVersion
       << ",\"program\":";
    writeJsonString(certificate.program, os);
    os << ",\"arch\":";
    writeJsonString(certificate.arch, os);
    os << ",\"aligner\":";
    writeJsonString(certificate.aligner, os);
    os << ",\"objective\":";
    writeJsonString(certificate.objective, os);
    os << ",\"encoding\":";
    writeJsonString(certificate.encoding, os);
    os << ",\"object\":";
    writeJsonString(certificate.object, os);
    os << ",\"verified\":" << (result.verified() ? "true" : "false")
       << ",\"checks\":" << result.totalChecks()
       << ",\"failures\":" << result.totalFailures()
       << ",\"obligations\":[";
    for (std::size_t i = 0; i < kNumObjObligations; ++i) {
        const auto obligation = static_cast<ObjObligation>(i);
        if (i > 0)
            os << ',';
        os << "{\"obligation\":\"" << objObligationName(obligation)
           << "\",\"summary\":";
        writeJsonString(objObligationSummary(obligation), os);
        os << ",\"checks\":" << result.obligations[i].checks
           << ",\"failures\":" << result.obligations[i].failures << '}';
    }
    os << "],\"failure_details\":[";
    for (std::size_t i = 0; i < result.failures.size(); ++i) {
        const ObjFailure &failure = result.failures[i];
        if (i > 0)
            os << ',';
        os << "{\"obligation\":\"" << objObligationName(failure.obligation)
           << "\",";
        writeOptionalId("proc", failure.proc, kNoProc, os);
        os << ',';
        writeOptionalId("byte_addr", failure.byteAddr, kNoAddr, os);
        os << ",\"detail\":";
        writeJsonString(failure.detail, os);
        os << '}';
    }
    // Per-procedure sizes measured from the DECODED object, under the
    // same key names `balign emit --json` reports from the relaxed
    // layout (pinned by the CLI schema test).
    os << "],\"procs\":[";
    for (std::size_t p = 0; p < result.disasm.procs.size(); ++p) {
        const DecodedProc &proc = result.disasm.procs[p];
        std::uint64_t shortBranches = 0;
        std::uint64_t nearBranches = 0;
        for (const DecodedInstr &instr : proc.instrs) {
            if (instr.form == BranchForm::Short)
                ++shortBranches;
            else if (instr.form == BranchForm::Near)
                ++nearBranches;
        }
        if (p > 0)
            os << ',';
        os << "{\"name\":";
        writeJsonString(proc.name, os);
        os << ",\"text_bytes\":" << proc.size
           << ",\"instrs\":" << proc.instrs.size()
           << ",\"short_branches\":" << shortBranches
           << ",\"near_branches\":" << nearBranches << '}';
    }
    os << "]}";
}

}  // namespace balign
