/**
 * @file
 * Independent disassembler: lifts the `.text` of an emitted object back
 * into instructions and a per-procedure control-flow graph.
 *
 * This is the read half of a binary-level translation-validation loop
 * (disasm/checkobj.h). Its one design rule is INDEPENDENCE: the decoder
 * shares no code with the writers in emit/encoding.cc and emit/elf.cc —
 * every opcode pattern, instruction size and displacement convention is
 * restated here from the encoding's documented byte formats, so a bug in
 * the encoder cannot silently cancel against the same bug in the
 * decoder. The only emit-side artifact it consumes is the ParsedElf from
 * the PR-9 self-contained reader (raw section payloads and symbols —
 * data, not encoding logic).
 *
 * Two instruction sets are decoded, matching the two EncodingModels:
 *
 *  - fixed-word: the synthetic self-describing model. Every instruction
 *    is 4 bytes: a class tag (0xb0 + InstrClass) followed by a 24-bit
 *    little-endian displacement, sign-extended, measured from the end of
 *    the instruction. Non-branch classes must carry a zero field.
 *  - variable: the x86-64-flavoured model. Opcodes decoded:
 *        0f 1f 40 00   body (canonical 4-byte nop)
 *        e8 rel32      call (field zero; a relocation carries the target)
 *        74 rel8       conditional branch, short form
 *        0f 84 rel32   conditional branch, near form
 *        eb rel8       unconditional jump, short form
 *        e9 rel32      unconditional jump, near form
 *        ff e0         indirect jump
 *        c3            return
 *    Any other byte sequence is a decode failure at that address.
 *
 * Decoding is symbol-driven: each GLOBAL STT_FUNC symbol names one
 * procedure's byte range, and the decoder sweeps it linearly. Failures
 * (unknown opcode, truncated instruction, nonzero field where the format
 * requires zero) are recorded per procedure, never thrown — the checker
 * turns them into decode-totality obligations.
 *
 * CFG recovery uses classic leader analysis and is shared between the
 * decoded stream and the source-side RelaxedLayout stream so that both
 * sides of the isomorphism check are built by the same rules: leaders
 * are the procedure base, every intra-procedure branch target, and the
 * address following any control transfer; successors follow from each
 * block's final instruction (target + optional fall-through).
 */

#ifndef BALIGN_DISASM_DISASM_H
#define BALIGN_DISASM_DISASM_H

#include <cstdint>
#include <string>
#include <vector>

#include "emit/elf.h"
#include "emit/encoding.h"
#include "layout/layout_result.h"

namespace balign {

/// One decoded instruction.
struct DecodedInstr
{
    InstrClass cls = InstrClass::Body;

    /// Short/Near for the variable model's relaxable classes; None for
    /// everything else (including every fixed-word instruction).
    BranchForm form = BranchForm::None;

    /// Byte address within .text (program-global).
    std::uint64_t addr = 0;

    /// Encoded size in bytes.
    std::uint8_t size = 0;

    /// Decoded displacement field, measured from the end of the
    /// instruction (zero for classes without one). For calls this is the
    /// raw rel32 field, which the writer leaves zero.
    std::int64_t disp = 0;

    /// True for CondBranch/Jump: `target` is addr + size + disp.
    bool hasTarget = false;
    std::uint64_t target = 0;
};

/// One procedure's decode: the symbol that named it plus its instructions.
struct DecodedProc
{
    std::string name;
    std::uint32_t symbol = 0;  ///< symtab index
    std::uint64_t base = 0;    ///< symbol value (byte address in .text)
    std::uint64_t size = 0;    ///< symbol size (bytes)

    /// Instructions in address order; covers [base, base+size) exactly
    /// when ok.
    std::vector<DecodedInstr> instrs;

    /// False when the linear sweep hit an undecodable or truncated
    /// instruction; `error` names the first offending byte address.
    bool ok = true;
    std::string error;
};

/// Whole-object disassembly.
struct Disassembly
{
    /// False only for structural problems (unknown e_machine, symbol
    /// table unusable); per-procedure decode failures leave ok true and
    /// land in the DecodedProc.
    bool ok = true;
    std::string error;

    EncodingModelKind model = EncodingModelKind::FixedWord;

    /// One entry per GLOBAL STT_FUNC symbol, in symtab order.
    std::vector<DecodedProc> procs;

    std::uint64_t textBytes = 0;
};

/**
 * Decodes every procedure of @p elf. The instruction set is chosen from
 * e_machine (EM_X86_64 -> variable, EM_NONE -> fixed-word, anything else
 * is a structural error).
 */
Disassembly disassembleObject(const ParsedElf &elf);

/// As above with the instruction set forced (for objects whose e_machine
/// the caller wants to second-guess).
Disassembly disassembleObject(const ParsedElf &elf, EncodingModelKind model);

// ---------------------------------------------------------------------
// CFG recovery (shared by the decoded and source-side streams).

/// The per-instruction view the lifter consumes: address, class and the
/// resolved intra-procedure branch target (when any).
struct CfgInstr
{
    std::uint64_t addr = 0;
    InstrClass cls = InstrClass::Body;
    bool hasTarget = false;
    std::uint64_t target = 0;
};

/// One recovered basic block.
struct LiftedBlock
{
    std::uint64_t addr = 0;        ///< leader byte address
    std::uint32_t firstInstr = 0;  ///< index into the lifted stream
    std::uint32_t numInstrs = 0;

    /// Class of the final instruction when it transfers control
    /// (CondBranch / Jump / IndirectJump / Return); Body when the block
    /// simply runs into the next leader.
    InstrClass terminator = InstrClass::Body;

    /// Successor block leader addresses, sorted ascending.
    std::vector<std::uint64_t> succs;
};

/// One procedure's recovered graph; blocks in address order (so the
/// block at the procedure base — the entry — is always first).
struct LiftedCfg
{
    std::vector<LiftedBlock> blocks;
};

/**
 * Leader analysis over @p instrs (address order, covering
 * [@p base, @p base + @p size)): splits the stream into basic blocks and
 * derives each block's successors. Branch targets outside the procedure
 * range still become successors (the checker flags them); they just
 * cannot start a block here.
 */
LiftedCfg liftCfg(const std::vector<CfgInstr> &instrs, std::uint64_t base,
                  std::uint64_t size);

/// Adapts one decoded procedure to the lifter's instruction view.
std::vector<CfgInstr> cfgInstrsFromDecoded(const DecodedProc &proc);

/**
 * Adapts one procedure's slice of a RelaxedLayout to the lifter's view:
 * branch targets resolve through the relaxed block placements, i.e. this
 * is the graph the bytes are SUPPOSED to encode.
 */
std::vector<CfgInstr> cfgInstrsFromRelaxed(const RelaxedLayout &relaxed,
                                           ProcId proc);

}  // namespace balign

#endif  // BALIGN_DISASM_DISASM_H
