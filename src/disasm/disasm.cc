#include "disasm/disasm.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/types.h"

namespace balign {

namespace {

/// Variadic ostringstream shorthand for error messages.
template <typename... Args>
std::string
msg(Args &&...args)
{
    std::ostringstream out;
    (out << ... << args);
    return out.str();
}

/// Two-digit lowercase hex of one byte.
std::string
hexByte(std::uint8_t v)
{
    static const char digits[] = "0123456789abcdef";
    return std::string{digits[v >> 4], digits[v & 0xf]};
}

// ELF constants restated locally (see file comment in disasm.h: this
// module re-derives every format fact instead of importing the writer's).
constexpr std::uint16_t kMachineNone = 0;    // EM_NONE -> fixed-word
constexpr std::uint16_t kMachineX86_64 = 62; // EM_X86_64 -> variable
constexpr std::uint8_t kGlobalFunc = 0x12;   // (STB_GLOBAL<<4)|STT_FUNC

std::int64_t
signExtend8(std::uint8_t v)
{
    return static_cast<std::int8_t>(v);
}

std::int64_t
signExtend24(std::uint32_t v)
{
    v &= 0xffffff;
    if (v & 0x800000)
        v |= 0xff000000;
    return static_cast<std::int32_t>(v);
}

std::uint32_t
readLe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

/**
 * Decodes one fixed-word instruction at @p addr. The synthetic format is
 * a class tag byte (0xb0 + InstrClass) followed by the low three bytes
 * of the displacement, little-endian, sign-extended; classes without a
 * displacement must carry a zero field (calls included — their target is
 * relocation-carried).
 */
bool
decodeFixedWord(const std::uint8_t *bytes, std::uint64_t addr,
                std::uint64_t avail, DecodedInstr &out, std::string &error)
{
    if (avail < 4) {
        error = msg("truncated fixed-word instruction at byte ", addr, " (",
                    avail, " bytes left, need 4)");
        return false;
    }
    const std::uint8_t tag = bytes[0];
    if (tag < 0xb0 || tag > 0xb5) {
        error = msg("unknown fixed-word tag 0x", hexByte(tag), " at byte ",
                    addr);
        return false;
    }
    const auto cls = static_cast<InstrClass>(tag - 0xb0);
    const std::uint32_t raw = static_cast<std::uint32_t>(bytes[1]) |
                              (static_cast<std::uint32_t>(bytes[2]) << 8) |
                              (static_cast<std::uint32_t>(bytes[3]) << 16);
    const std::int64_t disp = signExtend24(raw);

    out = DecodedInstr{};
    out.cls = cls;
    out.form = BranchForm::None;
    out.addr = addr;
    out.size = 4;
    out.disp = disp;
    if (cls == InstrClass::CondBranch || cls == InstrClass::Jump) {
        out.hasTarget = true;
        out.target = addr + 4 + static_cast<std::uint64_t>(disp);
    } else if (raw != 0) {
        error = msg("nonzero displacement field in non-branch fixed-word "
                    "instruction at byte ",
                    addr);
        return false;
    }
    return true;
}

/// Decodes one variable-model (x86-64-flavoured) instruction at @p addr.
bool
decodeVariable(const std::uint8_t *bytes, std::uint64_t addr,
               std::uint64_t avail, DecodedInstr &out, std::string &error)
{
    out = DecodedInstr{};
    out.addr = addr;
    out.form = BranchForm::None;

    const auto need = [&](std::uint64_t n) {
        if (avail >= n)
            return true;
        error = msg("truncated instruction at byte ", addr, " (", avail,
                    " bytes left, need ", n, ")");
        return false;
    };

    switch (bytes[0]) {
      case 0x0f:
        if (!need(2))
            return false;
        if (bytes[1] == 0x1f) {  // 0f 1f 40 00: canonical 4-byte nop
            if (!need(4))
                return false;
            if (bytes[2] != 0x40 || bytes[3] != 0x00) {
                error = msg("unknown nop shape 0f 1f ", hexByte(bytes[2]), " ",
                            hexByte(bytes[3]), " at byte ", addr);
                return false;
            }
            out.cls = InstrClass::Body;
            out.size = 4;
            return true;
        }
        if (bytes[1] == 0x84) {  // 0f 84 rel32: je near
            if (!need(6))
                return false;
            out.cls = InstrClass::CondBranch;
            out.form = BranchForm::Near;
            out.size = 6;
            out.disp = static_cast<std::int32_t>(readLe32(bytes + 2));
            out.hasTarget = true;
            out.target =
                addr + 6 + static_cast<std::uint64_t>(out.disp);
            return true;
        }
        error = msg("unknown two-byte opcode 0f ", hexByte(bytes[1]),
                    " at byte ", addr);
        return false;
      case 0x74:  // 74 rel8: je short
        if (!need(2))
            return false;
        out.cls = InstrClass::CondBranch;
        out.form = BranchForm::Short;
        out.size = 2;
        out.disp = signExtend8(bytes[1]);
        out.hasTarget = true;
        out.target = addr + 2 + static_cast<std::uint64_t>(out.disp);
        return true;
      case 0xeb:  // eb rel8: jmp short
        if (!need(2))
            return false;
        out.cls = InstrClass::Jump;
        out.form = BranchForm::Short;
        out.size = 2;
        out.disp = signExtend8(bytes[1]);
        out.hasTarget = true;
        out.target = addr + 2 + static_cast<std::uint64_t>(out.disp);
        return true;
      case 0xe9:  // e9 rel32: jmp near
        if (!need(5))
            return false;
        out.cls = InstrClass::Jump;
        out.form = BranchForm::Near;
        out.size = 5;
        out.disp = static_cast<std::int32_t>(readLe32(bytes + 1));
        out.hasTarget = true;
        out.target = addr + 5 + static_cast<std::uint64_t>(out.disp);
        return true;
      case 0xe8:  // e8 rel32: call (field zero; relocation carries it)
        if (!need(5))
            return false;
        out.cls = InstrClass::Call;
        out.size = 5;
        out.disp = static_cast<std::int32_t>(readLe32(bytes + 1));
        return true;
      case 0xff:  // ff e0: jmp *%rax
        if (!need(2))
            return false;
        if (bytes[1] != 0xe0) {
            error = msg("unknown opcode ff ", hexByte(bytes[1]), " at byte ",
                        addr);
            return false;
        }
        out.cls = InstrClass::IndirectJump;
        out.size = 2;
        return true;
      case 0xc3:  // c3: ret
        out.cls = InstrClass::Return;
        out.size = 1;
        return true;
      default:
        error = msg("unknown opcode ", hexByte(bytes[0]), " at byte ", addr);
        return false;
    }
}

DecodedProc
decodeProc(const std::vector<std::uint8_t> &text, const ElfSymbolInfo &sym,
           std::uint32_t symbolIndex, EncodingModelKind model)
{
    DecodedProc proc;
    proc.name = sym.name;
    proc.symbol = symbolIndex;
    proc.base = sym.value;
    proc.size = sym.size;

    if (sym.value > text.size() || sym.size > text.size() - sym.value) {
        proc.ok = false;
        proc.error = msg("symbol range [", sym.value, ", ",
                         sym.value + sym.size, ") escapes .text (",
                         text.size(), " bytes)");
        return proc;
    }

    std::uint64_t addr = sym.value;
    const std::uint64_t end = sym.value + sym.size;
    while (addr < end) {
        DecodedInstr instr;
        std::string error;
        const bool ok =
            model == EncodingModelKind::FixedWord
                ? decodeFixedWord(text.data() + addr, addr, end - addr,
                                  instr, error)
                : decodeVariable(text.data() + addr, addr, end - addr,
                                 instr, error);
        if (!ok) {
            proc.ok = false;
            proc.error = error;
            return proc;
        }
        proc.instrs.push_back(instr);
        addr += instr.size;
    }
    return proc;
}

}  // namespace

Disassembly
disassembleObject(const ParsedElf &elf, EncodingModelKind model)
{
    Disassembly out;
    out.model = model;
    if (!elf.ok) {
        out.ok = false;
        out.error = msg("unparseable object: ", elf.error);
        return out;
    }
    out.textBytes = elf.text.size();
    for (std::uint32_t i = 0; i < elf.symbols.size(); ++i) {
        const ElfSymbolInfo &sym = elf.symbols[i];
        if (sym.info != kGlobalFunc)
            continue;
        out.procs.push_back(decodeProc(elf.text, sym, i, model));
    }
    return out;
}

Disassembly
disassembleObject(const ParsedElf &elf)
{
    if (!elf.ok)
        return disassembleObject(elf, EncodingModelKind::FixedWord);
    switch (elf.machine) {
      case kMachineNone:
        return disassembleObject(elf, EncodingModelKind::FixedWord);
      case kMachineX86_64:
        return disassembleObject(elf, EncodingModelKind::Variable);
      default: {
        Disassembly out;
        out.ok = false;
        out.error = msg("unknown e_machine ", elf.machine,
                        " (no matching encoding model)");
        return out;
      }
    }
}

LiftedCfg
liftCfg(const std::vector<CfgInstr> &instrs, std::uint64_t base,
        std::uint64_t size)
{
    LiftedCfg cfg;
    if (instrs.empty())
        return cfg;
    const std::uint64_t end = base + size;

    const auto transfers = [](InstrClass cls) {
        return cls == InstrClass::CondBranch || cls == InstrClass::Jump ||
               cls == InstrClass::IndirectJump || cls == InstrClass::Return;
    };

    // Leaders: procedure base, every in-range branch target, and the
    // address after any control transfer.
    std::set<std::uint64_t> leaders;
    leaders.insert(base);
    for (std::uint32_t i = 0; i < instrs.size(); ++i) {
        const CfgInstr &instr = instrs[i];
        if (instr.hasTarget && instr.target >= base && instr.target < end)
            leaders.insert(instr.target);
        if (transfers(instr.cls) && i + 1 < instrs.size())
            leaders.insert(instrs[i + 1].addr);
    }

    // Cut the stream at leaders; instrs are in address order, so blocks
    // come out in address order with the entry (at base) first.
    std::uint32_t i = 0;
    while (i < instrs.size()) {
        LiftedBlock block;
        block.addr = instrs[i].addr;
        block.firstInstr = i;
        while (i < instrs.size()) {
            const CfgInstr &instr = instrs[i];
            ++block.numInstrs;
            ++i;
            if (transfers(instr.cls)) {
                block.terminator = instr.cls;
                break;
            }
            if (i < instrs.size() && leaders.count(instrs[i].addr))
                break;
        }

        const CfgInstr &last = instrs[block.firstInstr + block.numInstrs - 1];
        switch (block.terminator) {
          case InstrClass::CondBranch:
            if (last.hasTarget)
                block.succs.push_back(last.target);
            // Fall-through edge: the next address (procedure end when the
            // branch is the final instruction — both streams agree).
            block.succs.push_back(i < instrs.size() ? instrs[i].addr : end);
            break;
          case InstrClass::Jump:
            if (last.hasTarget)
                block.succs.push_back(last.target);
            break;
          case InstrClass::IndirectJump:
          case InstrClass::Return:
            break;
          default:
            // Block cut by a leader: falls through to the next address.
            if (i < instrs.size())
                block.succs.push_back(instrs[i].addr);
            break;
        }
        std::sort(block.succs.begin(), block.succs.end());
        block.succs.erase(
            std::unique(block.succs.begin(), block.succs.end()),
            block.succs.end());
        cfg.blocks.push_back(std::move(block));
    }
    return cfg;
}

std::vector<CfgInstr>
cfgInstrsFromDecoded(const DecodedProc &proc)
{
    std::vector<CfgInstr> out;
    out.reserve(proc.instrs.size());
    for (const DecodedInstr &instr : proc.instrs) {
        CfgInstr view;
        view.addr = instr.addr;
        view.cls = instr.cls;
        view.hasTarget = instr.hasTarget;
        view.target = instr.target;
        out.push_back(view);
    }
    return out;
}

std::vector<CfgInstr>
cfgInstrsFromRelaxed(const RelaxedLayout &relaxed, ProcId proc)
{
    std::vector<CfgInstr> out;
    const RelaxedProc &rp = relaxed.procs[proc];
    out.reserve(rp.numInstrs);
    for (std::uint32_t i = 0; i < rp.numInstrs; ++i) {
        const RelaxedInstr &slot = relaxed.instrs[rp.firstInstr + i];
        CfgInstr view;
        view.addr = slot.byteAddr;
        view.cls = slot.cls;
        if ((slot.cls == InstrClass::CondBranch ||
             slot.cls == InstrClass::Jump) &&
            slot.targetBlock != kNoBlock) {
            view.hasTarget = true;
            view.target = rp.blocks[slot.targetBlock].byteAddr;
        }
        out.push_back(view);
    }
    return out;
}

}  // namespace balign
