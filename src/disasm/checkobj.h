/**
 * @file
 * Binary-level translation validator: proves an emitted object's bytes
 * mean what the RelaxedLayout says.
 *
 * PR 5's verifier stops at the abstract layout and PR 9's obligations
 * stop at the relaxation fixpoint; this module closes the loop at the
 * byte level. It decodes the object with the independent disassembler
 * (disasm/disasm.h — zero code shared with the emit-side writers) and
 * discharges a new obligation family against the source program and the
 * relaxed layout:
 *
 *  - decode-totality    the object parses, every procedure's byte range
 *                       decodes cleanly end to end, procedure ranges
 *                       tile .text exactly (no gap, no overlap, no
 *                       trailing garbage), and the symbol table matches
 *                       the source procedures one-for-one
 *  - branch-target      every decoded displacement lands inside its own
 *                       procedure on a decoded instruction boundary
 *                       (which the CFG lifter then necessarily makes a
 *                       block head)
 *  - reloc-correctness  each decoded call carries exactly one
 *                       R_X86_64_PLT32 relocation at the displacement
 *                       field, naming the source callee's symbol with
 *                       the writer's addend convention (-4) and a zero
 *                       field in the bytes; no relocation is left over
 *  - cfg-isomorphism    the basic-block graph lifted from the decoded
 *                       bytes is identical — block addresses, instruction
 *                       counts, terminator classes, successor sets,
 *                       entry first — to the graph lifted from the
 *                       relaxed layout by the same leader rules
 *  - size-accounting    byte totals, symbol values/sizes and per-slot
 *                       addresses/sizes agree with the relaxation
 *                       fixpoint instruction for instruction
 *
 * Like the PR-5 verifier, checking is total (malformed objects produce
 * failures, never a panic), every failure names its obligation, and the
 * result serializes to a machine-checkable certificate JSON with its own
 * schema_version.
 */

#ifndef BALIGN_DISASM_CHECKOBJ_H
#define BALIGN_DISASM_CHECKOBJ_H

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cfg/program.h"
#include "disasm/disasm.h"
#include "emit/relax.h"

namespace balign {

/// One byte-level proof obligation the object checker discharges.
enum class ObjObligation : std::uint8_t {
    DecodeTotality,
    BranchTarget,
    RelocCorrectness,
    CfgIsomorphism,
    SizeAccounting,
};

inline constexpr std::size_t kNumObjObligations = 5;

/// Stable kebab-case obligation name (certificate schema).
const char *objObligationName(ObjObligation obligation);

/// One-line statement of what the obligation proves.
const char *objObligationSummary(ObjObligation obligation);

/// One unproven obligation instance.
struct ObjFailure
{
    ObjObligation obligation = ObjObligation::DecodeTotality;
    ProcId proc = kNoProc;          ///< kNoProc for whole-object failures
    std::uint64_t byteAddr = kNoAddr;  ///< kNoAddr when not address-bound
    std::string detail;
};

/// Check/failure tally for one obligation.
struct ObjObligationRecord
{
    std::size_t checks = 0;
    std::size_t failures = 0;
};

/// Outcome of validating one object against its source + relaxed layout.
struct ObjCheckResult
{
    /// Indexed by ObjObligation.
    std::array<ObjObligationRecord, kNumObjObligations> obligations{};

    /// Every failed obligation instance, in discovery order.
    std::vector<ObjFailure> failures;

    /// The decode the checks ran against (kept for lint and the CLI's
    /// per-procedure reporting).
    Disassembly disasm;

    bool verified() const { return failures.empty(); }
    std::size_t totalChecks() const;
    std::size_t totalFailures() const { return failures.size(); }
};

/// One-line rendering:
/// `check-obj[branch-target] proc=0 byte=42: detail`
std::string formatObjFailure(const ObjFailure &failure);

/**
 * Validates @p objectBytes (a serialized relocatable object, e.g. from
 * buildElfObject or read back from disk) against @p program and the
 * @p relaxed layout that allegedly produced it. The object is parsed and
 * decoded internally; the encoding model is taken from relaxed.model and
 * cross-checked against the object's e_machine.
 */
ObjCheckResult checkObject(const Program &program,
                           const RelaxedLayout &relaxed,
                           const std::vector<std::uint8_t> &objectBytes);

/// Version of the check-obj certificate JSON schema.
inline constexpr int kCheckObjSchemaVersion = 1;

/// One object's validation outcome plus its provenance.
struct ObjCertificate
{
    std::string program;
    std::string arch;
    std::string aligner;
    std::string objective;
    std::string encoding;  ///< encoding model name
    std::string object;    ///< object path, empty for in-memory checks
    ObjCheckResult result;
};

/**
 * Writes @p certificate as one JSON object, the byte-level sibling of
 * the PR-5 verify certificate: schema_version, provenance (program /
 * arch / aligner / objective / encoding / object), verified flag, per-
 * obligation check/failure tallies and full failure details.
 */
void writeObjCertificateJson(const ObjCertificate &certificate,
                             std::ostream &os);

}  // namespace balign

#endif  // BALIGN_DISASM_CHECKOBJ_H
