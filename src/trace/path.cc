#include "trace/path.h"

#include "support/log.h"

namespace balign {

void
PathRecorder::onBlock(ProcId proc, BlockId block)
{
    events_.push_back({PathEvent::Kind::Block, proc, block, 0});
}

void
PathRecorder::onCall(ProcId proc, BlockId block, const CallSite &site)
{
    events_.push_back({PathEvent::Kind::Call, proc, block, site.offset});
}

void
PathRecorder::onReturn(ProcId proc, BlockId block, const CallSite &site)
{
    events_.push_back({PathEvent::Kind::Return, proc, block, site.offset});
}

void
PathRecorder::onEdge(ProcId proc, std::uint32_t edge_index)
{
    events_.push_back({PathEvent::Kind::Edge, proc, edge_index, 0});
}

void
PathRecorder::onExit()
{
    events_.push_back({PathEvent::Kind::Exit, kNoProc, 0, 0});
}

void
PathRecorder::replay(const Program &program, EventSink &sink) const
{
    auto find_site = [&](ProcId proc, BlockId block,
                         std::uint32_t offset) -> const CallSite & {
        for (const auto &site : program.proc(proc).block(block).calls) {
            if (site.offset == offset)
                return site;
        }
        panic("replay: no call site at offset %u in proc %u block %u",
              offset, proc, block);
    };

    for (const auto &event : events_) {
        switch (event.kind) {
          case PathEvent::Kind::Block:
            sink.onBlock(event.proc, event.value);
            break;
          case PathEvent::Kind::Call:
            sink.onCall(event.proc, event.value,
                        find_site(event.proc, event.value, event.site));
            break;
          case PathEvent::Kind::Return:
            sink.onReturn(event.proc, event.value,
                          find_site(event.proc, event.value, event.site));
            break;
          case PathEvent::Kind::Edge:
            sink.onEdge(event.proc, event.value);
            break;
          case PathEvent::Kind::Exit:
            sink.onExit();
            break;
        }
    }
}

}  // namespace balign
