/**
 * @file
 * Adapter from the walker's CFG-level event stream to concrete branch
 * events under a specific layout.
 *
 * The walk is layout-independent (it speaks in blocks and CFG edges); what
 * the hardware sees depends on the layout: branch senses may be inverted,
 * unconditional jumps inserted or deleted, and all addresses shift. This
 * adapter performs that mapping once so every consumer (the architecture
 * evaluators, the pipeline timing model) shares identical semantics:
 *
 *  - a conditional edge traversal becomes a Cond event (realized direction
 *    per the block's CondRealization) optionally followed by an Uncond
 *    event for the inserted jump;
 *  - unconditional blocks emit Uncond unless their jump was deleted;
 *  - fall-through blocks emit Uncond when a jump was inserted;
 *  - calls emit Call; returns emit Return with the actual resume address;
 *  - instruction counts reflect the layout (inserted jumps count only when
 *    executed).
 */

#ifndef BALIGN_TRACE_BRANCH_EVENTS_H
#define BALIGN_TRACE_BRANCH_EVENTS_H

#include "cfg/program.h"
#include "layout/layout_result.h"
#include "trace/event.h"

namespace balign {

/// A resolved branch execution under a concrete layout.
struct BranchEvent
{
    enum class Type : std::uint8_t {
        Cond,      ///< conditional branch (taken field meaningful)
        Uncond,    ///< unconditional direct branch (original or inserted)
        Indirect,  ///< indirect jump
        Call,      ///< direct procedure call
        Return,    ///< procedure return (target = actual resume address;
                   ///< kNoAddr when the program exits)
    };

    Type type;
    Addr site;    ///< address of the branch instruction
    Addr target;  ///< destination address
    bool taken;   ///< realized direction (Cond only; others always taken)
    ProcId proc;  ///< procedure of the branch site
    BlockId block;  ///< block of the branch site
};

/// Consumer interface for resolved events.
class BranchEventHandler
{
  public:
    virtual ~BranchEventHandler() = default;

    /// @p count instructions executed (non-branch work and branch
    /// instructions alike; called per block activation and per inserted
    /// jump).
    virtual void onInstrs(std::uint64_t count) = 0;

    /// A branch executed.
    virtual void onBranch(const BranchEvent &event) = 0;

    /**
     * A contiguous instruction range [addr, addr+count) was fetched
     * (block activation under the layout). Used by cache models; default
     * no-op.
     */
    virtual void onFetchRange(Addr addr, std::uint32_t count);
};

/**
 * The adapter. Register it as the walk's sink (directly or via MultiSink).
 */
class BranchEventAdapter : public EventSink
{
  public:
    BranchEventAdapter(const Program &program, const ProgramLayout &layout,
                       BranchEventHandler &handler)
        : program_(program), layout_(layout), handler_(handler)
    {
    }

    /// Only references are kept; temporaries would dangle.
    BranchEventAdapter(const Program &, ProgramLayout &&,
                       BranchEventHandler &) = delete;
    BranchEventAdapter(Program &&, const ProgramLayout &,
                       BranchEventHandler &) = delete;

    void onBlock(ProcId proc, BlockId block) override;
    void onCall(ProcId proc, BlockId block, const CallSite &site) override;
    void onReturn(ProcId proc, BlockId block, const CallSite &site) override;
    void onEdge(ProcId proc, std::uint32_t edge_index) override;
    void onExit() override;

  private:
    /// Emits the Return event for the block being left, if it ends in one.
    void resolvePendingReturn(Addr actual_target);

    const Program &program_;
    const ProgramLayout &layout_;
    BranchEventHandler &handler_;

    ProcId curProc_ = kNoProc;
    BlockId curBlock_ = kNoBlock;
};

}  // namespace balign

#endif  // BALIGN_TRACE_BRANCH_EVENTS_H
