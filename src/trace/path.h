/**
 * @file
 * Recording and replaying event streams.
 *
 * Most experiments regenerate walks from the seed (cheaper in memory), but a
 * recorded path is useful for tests (determinism checks, golden traces) and
 * for consumers that need multiple passes over a short trace.
 */

#ifndef BALIGN_TRACE_PATH_H
#define BALIGN_TRACE_PATH_H

#include <cstdint>
#include <vector>

#include "cfg/program.h"
#include "trace/event.h"

namespace balign {

/// One recorded trace event.
struct PathEvent
{
    enum class Kind : std::uint8_t { Block, Call, Return, Edge, Exit };

    Kind kind;
    ProcId proc = kNoProc;
    /// Block id (Block/Call/Return) or edge index (Edge).
    std::uint32_t value = 0;
    /// Call-site index within the block (Call/Return only).
    std::uint32_t site = 0;

    bool
    operator==(const PathEvent &other) const = default;
};

/**
 * Records every event into a vector. The owning program is needed at replay
 * time to resolve call sites.
 */
class PathRecorder : public EventSink
{
  public:
    void onBlock(ProcId proc, BlockId block) override;
    void onCall(ProcId proc, BlockId block, const CallSite &site) override;
    void onReturn(ProcId proc, BlockId block, const CallSite &site) override;
    void onEdge(ProcId proc, std::uint32_t edge_index) override;
    void onExit() override;

    const std::vector<PathEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    void clear() { events_.clear(); }

    /// Re-emits the recorded events to @p sink.
    void replay(const Program &program, EventSink &sink) const;

  private:
    std::vector<PathEvent> events_;
};

}  // namespace balign

#endif  // BALIGN_TRACE_PATH_H
