/**
 * @file
 * Record-once trace engine.
 *
 * Walking a program model is the experiment pipeline's hot path: the walker
 * re-executes CFG control flow, draws from the RNG at every conditional and
 * indirect terminator, and (via MultiSink) pays one virtual call per sink
 * per event — millions of events per program, repeated for every
 * (layout, architecture) configuration. The recorder removes all of that
 * repeated work: one walk is captured into a compact structure-of-arrays
 * event buffer, and every subsequent evaluation replays the buffer with a
 * tight loop that does nothing but dispatch events to a single sink.
 *
 * Replays are completely independent of each other — no shared mutable
 * state — so the parallel experiment runner (sim/runner.h) schedules them
 * freely across threads while remaining bit-identical to a serial run.
 *
 * Storage: 9 bytes per event (1-byte opcode + two 32-bit operands in
 * parallel arrays) plus 4 bytes per call/return for the call-site index.
 * Call sites are stored by index and resolved against the Program at replay
 * time, so a RecordedTrace holds no pointers into the program and stays
 * valid across Program moves; the replayed program must simply have the
 * same CFG shape as the recorded one (same blocks, edges and call sites).
 */

#ifndef BALIGN_TRACE_RECORDER_H
#define BALIGN_TRACE_RECORDER_H

#include <cstdint>
#include <vector>

#include "cfg/program.h"
#include "trace/event.h"
#include "trace/walker.h"

namespace balign {

/// A captured walk: the full event stream in replayable form.
class RecordedTrace
{
  public:
    /// Replays the captured stream into @p sink, event for event.
    /// @p program must be CFG-identical to the recorded program.
    void replay(const Program &program, EventSink &sink) const;

    /// Number of captured events.
    std::size_t numEvents() const { return ops_.size(); }

    /// Approximate heap footprint of the buffers, in bytes.
    std::size_t sizeBytes() const;

    /// The WalkResult of the recorded walk.
    const WalkResult &walkResult() const { return walkResult_; }

  private:
    friend class TraceRecorder;

    enum class Op : std::uint8_t { Block, Call, Return, Edge, Exit };

    // Structure-of-arrays event buffer; entry i of ops_/procs_/args_ is one
    // event. args_ holds the block (Block/Call/Return) or the edge index
    // (Edge). sites_ is a side array consumed in order by Call/Return.
    std::vector<std::uint8_t> ops_;
    std::vector<std::uint32_t> procs_;
    std::vector<std::uint32_t> args_;
    std::vector<std::uint32_t> sites_;
    WalkResult walkResult_;
};

/**
 * EventSink that captures the stream into a RecordedTrace. Drive it with
 * walk() (directly or via MultiSink, e.g. alongside the Profiler so a
 * single walk both profiles and records), then take() the buffer.
 */
class TraceRecorder : public EventSink
{
  public:
    /// @p program is used to derive call-site indices; it must be the same
    /// program the walk runs over.
    explicit TraceRecorder(const Program &program) : program_(program) {}

    void onBlock(ProcId proc, BlockId block) override;
    void onCall(ProcId proc, BlockId block, const CallSite &site) override;
    void onReturn(ProcId proc, BlockId block, const CallSite &site) override;
    void onEdge(ProcId proc, std::uint32_t edge_index) override;
    void onExit() override;

    /// Records the walk summary (usually the return value of walk()).
    void setWalkResult(const WalkResult &result)
    {
        trace_.walkResult_ = result;
    }

    /// Moves the captured trace out; the recorder is empty afterwards.
    RecordedTrace take() { return std::move(trace_); }

  private:
    void push(RecordedTrace::Op op, std::uint32_t proc, std::uint32_t arg);

    const Program &program_;
    RecordedTrace trace_;
};

/**
 * Convenience: walks @p program once with @p options and returns the
 * captured trace (walk summary included).
 */
RecordedTrace recordTrace(const Program &program, const WalkOptions &options);

}  // namespace balign

#endif  // BALIGN_TRACE_RECORDER_H
