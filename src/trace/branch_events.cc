#include "trace/branch_events.h"

#include "layout/materialize.h"
#include "support/log.h"

namespace balign {

void
BranchEventHandler::onFetchRange(Addr, std::uint32_t)
{
}

void
BranchEventAdapter::onBlock(ProcId proc, BlockId block)
{
    const BlockLayout &bl = layout_.procs[proc].blocks[block];
    handler_.onInstrs(bl.baseInstrs);
    handler_.onFetchRange(bl.addr, bl.baseInstrs);
    curProc_ = proc;
    curBlock_ = block;
}

void
BranchEventAdapter::onCall(ProcId proc, BlockId block, const CallSite &site)
{
    const BlockLayout &bl = layout_.procs[proc].blocks[block];
    const Addr call_addr = bl.addr + site.offset;
    handler_.onBranch(BranchEvent{BranchEvent::Type::Call, call_addr,
                                  layout_.procEntryAddr(site.callee), true,
                                  proc, block});
}

void
BranchEventAdapter::resolvePendingReturn(Addr actual_target)
{
    if (curProc_ == kNoProc)
        return;
    const BasicBlock &block = program_.proc(curProc_).block(curBlock_);
    if (block.term != Terminator::Return)
        return;  // dead-end unwind: no return instruction executed
    const BlockLayout &bl = layout_.procs[curProc_].blocks[curBlock_];
    handler_.onBranch(BranchEvent{BranchEvent::Type::Return, bl.branchAddr,
                                  actual_target, true, curProc_, curBlock_});
}

void
BranchEventAdapter::onReturn(ProcId proc, BlockId block, const CallSite &site)
{
    const BlockLayout &bl = layout_.procs[proc].blocks[block];
    resolvePendingReturn(bl.addr + site.offset + 1);
    curProc_ = proc;
    curBlock_ = block;
}

void
BranchEventAdapter::onExit()
{
    resolvePendingReturn(kNoAddr);
    curProc_ = kNoProc;
    curBlock_ = kNoBlock;
}

void
BranchEventAdapter::onEdge(ProcId proc, std::uint32_t edge_index)
{
    const Procedure &procedure = program_.proc(proc);
    const Edge &edge = procedure.edge(edge_index);
    const BasicBlock &block = procedure.block(edge.src);
    const ProcLayout &proc_layout = layout_.procs[proc];
    const BlockLayout &bl = proc_layout.blocks[edge.src];

    switch (block.term) {
      case Terminator::CondBranch: {
        const CondOutcome outcome = condOutcome(bl.cond, edge.kind);
        const EdgeKind target_kind = branchTargetKind(bl.cond);
        const auto target_index = static_cast<std::uint32_t>(
            target_kind == EdgeKind::Taken
                ? procedure.takenEdge(edge.src)
                : procedure.fallThroughEdge(edge.src));
        const Addr target =
            proc_layout.blocks[procedure.edge(target_index).dst].addr;
        handler_.onBranch(BranchEvent{BranchEvent::Type::Cond,
                                      bl.branchAddr, target,
                                      outcome.branchTaken, proc, edge.src});
        if (outcome.jumpExecuted) {
            handler_.onInstrs(1);
            handler_.onFetchRange(bl.jumpAddr, 1);
            handler_.onBranch(BranchEvent{BranchEvent::Type::Uncond,
                                          bl.jumpAddr,
                                          proc_layout.blocks[edge.dst].addr,
                                          true, proc, edge.src});
        }
        break;
      }
      case Terminator::UncondBranch:
        if (!bl.jumpRemoved) {
            handler_.onBranch(
                BranchEvent{BranchEvent::Type::Uncond, bl.branchAddr,
                            proc_layout.blocks[edge.dst].addr, true, proc,
                            edge.src});
        }
        break;
      case Terminator::FallThrough:
        if (bl.jumpInserted) {
            handler_.onInstrs(1);
            handler_.onFetchRange(bl.jumpAddr, 1);
            handler_.onBranch(
                BranchEvent{BranchEvent::Type::Uncond, bl.jumpAddr,
                            proc_layout.blocks[edge.dst].addr, true, proc,
                            edge.src});
        }
        break;
      case Terminator::IndirectJump:
        handler_.onBranch(BranchEvent{BranchEvent::Type::Indirect,
                                      bl.branchAddr,
                                      proc_layout.blocks[edge.dst].addr,
                                      true, proc, edge.src});
        break;
      case Terminator::Return:
        panic("BranchEventAdapter: edge out of a return block");
    }
}

}  // namespace balign
