#include "trace/profiler.h"

namespace balign {

void
Profiler::onBlock(ProcId proc, BlockId block)
{
    partial_.instrsTraced += program_.proc(proc).block(block).numInstrs;
    curProc_ = proc;
    curBlock_ = block;
}

void
Profiler::onCall(ProcId proc, BlockId block, const CallSite &site)
{
    (void)block;
    ++partial_.calls;
    ++callCounts_[{proc, site.callee}];
}

void
Profiler::noteReturn()
{
    if (curProc_ == kNoProc)
        return;
    const auto &block = program_.proc(curProc_).block(curBlock_);
    if (block.term == Terminator::Return)
        ++partial_.returns;
}

void
Profiler::onReturn(ProcId proc, BlockId block, const CallSite &site)
{
    (void)site;
    noteReturn();
    // Execution resumes in the caller's block.
    curProc_ = proc;
    curBlock_ = block;
}

void
Profiler::onEdge(ProcId proc, std::uint32_t edge_index)
{
    Procedure &procedure = program_.proc(proc);
    Edge &edge = procedure.edge(edge_index);
    ++edge.weight;

    switch (procedure.block(edge.src).term) {
      case Terminator::CondBranch:
        ++partial_.condBranches;
        if (edge.kind == EdgeKind::Taken)
            ++partial_.takenCondBranches;
        break;
      case Terminator::UncondBranch:
        ++partial_.uncondBranches;
        break;
      case Terminator::IndirectJump:
        ++partial_.indirectJumps;
        break;
      case Terminator::FallThrough:
      case Terminator::Return:
        break;
    }
}

void
Profiler::onExit()
{
    noteReturn();
    curProc_ = kNoProc;
    curBlock_ = kNoBlock;
}

ProgramStats
Profiler::stats() const
{
    ProgramStats stats = partial_;
    fillStaticStats(program_, stats);
    return stats;
}

}  // namespace balign
