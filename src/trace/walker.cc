#include "trace/walker.h"

#include <vector>

#include "support/log.h"
#include "support/rng.h"

namespace balign {

namespace {

struct Frame
{
    ProcId proc;
    BlockId block;
    std::uint32_t callIndex = 0;
    bool entered = false;
};

}  // namespace

WalkResult
walk(const Program &program, const WalkOptions &options, EventSink &sink)
{
    WalkResult result;
    Rng rng(options.seed);

    if (program.numProcs() == 0)
        panic("walk: empty program");

    std::vector<Frame> stack;
    // Scratch weight buffer for indirect jumps, reused across events so the
    // hot loop performs no per-event heap allocation.
    std::vector<double> weights;
    // Per-branch pattern positions (allocated lazily per procedure).
    std::vector<std::vector<std::uint8_t>> pattern_pos(program.numProcs());
    // Per-branch last outcomes: 0 = not taken, 1 = taken, 2 = none yet.
    std::vector<std::vector<std::uint8_t>> last_outcome(program.numProcs());
    const ProcId main = program.mainProc();
    stack.push_back(
        Frame{main, program.proc(main).entry(), 0, false});

    while (!stack.empty()) {
        Frame &frame = stack.back();
        const Procedure &proc = program.proc(frame.proc);
        const BasicBlock &block = proc.block(frame.block);

        if (!frame.entered) {
            if (result.instrs >= options.instrBudget)
                break;
            sink.onBlock(frame.proc, frame.block);
            result.instrs += block.numInstrs;
            ++result.blocks;
            frame.entered = true;
            frame.callIndex = 0;
        }

        // Fire any remaining call sites, in offset order.
        if (frame.callIndex < block.calls.size()) {
            const CallSite &site = block.calls[frame.callIndex];
            ++frame.callIndex;
            if (stack.size() < options.maxCallDepth) {
                sink.onCall(frame.proc, frame.block, site);
                ++result.calls;
                const Procedure &callee = program.proc(site.callee);
                stack.push_back(
                    Frame{site.callee, callee.entry(), 0, false});
            } else {
                ++result.skippedCalls;
            }
            continue;
        }

        // Block finished: act on the terminator.
        std::int64_t chosen = -1;
        bool unwind = false;
        switch (block.term) {
          case Terminator::FallThrough:
            chosen = proc.fallThroughEdge(frame.block);
            if (chosen < 0)
                unwind = true;  // dead end: treat as procedure exit
            break;
          case Terminator::UncondBranch:
            chosen = proc.takenEdge(frame.block);
            if (chosen < 0)
                unwind = true;
            break;
          case Terminator::CondBranch: {
            const std::int64_t taken = proc.takenEdge(frame.block);
            const std::int64_t fall = proc.fallThroughEdge(frame.block);
            auto &outcomes = last_outcome[frame.proc];
            if (outcomes.empty())
                outcomes.assign(proc.numBlocks(), 2);
            bool take;
            if (block.correlatedWith != kNoBlock &&
                outcomes[block.correlatedWith] != 2) {
                take = (outcomes[block.correlatedWith] != 0) !=
                       block.correlatedInvert;
            } else if (block.patternLength > 0) {
                auto &positions = pattern_pos[frame.proc];
                if (positions.empty())
                    positions.assign(proc.numBlocks(), 0);
                std::uint8_t &pos = positions[frame.block];
                take = (block.patternMask >> pos) & 1u;
                pos = static_cast<std::uint8_t>((pos + 1) %
                                                block.patternLength);
            } else {
                const double bias_taken = proc.edge(taken).bias;
                const double bias_fall = proc.edge(fall).bias;
                const double total = bias_taken + bias_fall;
                const double p_taken =
                    total > 0.0 ? bias_taken / total : 0.5;
                take = rng.nextBool(p_taken);
            }
            outcomes[frame.block] = take ? 1 : 0;
            chosen = take ? taken : fall;
            break;
          }
          case Terminator::IndirectJump: {
            weights.clear();
            weights.reserve(block.outEdges.size());
            bool any = false;
            for (auto index : block.outEdges) {
                const double bias = proc.edge(index).bias;
                weights.push_back(bias);
                any = any || bias > 0.0;
            }
            if (weights.empty()) {
                unwind = true;
                break;
            }
            if (!any)
                std::fill(weights.begin(), weights.end(), 1.0);
            const std::size_t pick =
                rng.nextWeighted(weights.data(), weights.size());
            chosen = block.outEdges[pick];
            break;
          }
          case Terminator::Return:
            unwind = true;
            break;
        }

        if (unwind) {
            stack.pop_back();
            if (stack.empty()) {
                ++result.runs;
                sink.onExit();
                if (options.restartOnExit &&
                    result.instrs < options.instrBudget) {
                    stack.push_back(
                        Frame{main, program.proc(main).entry(), 0, false});
                }
                continue;
            }
            Frame &caller = stack.back();
            const Procedure &caller_proc = program.proc(caller.proc);
            const BasicBlock &caller_block = caller_proc.block(caller.block);
            // The call we are returning to is the one just consumed.
            const CallSite &site = caller_block.calls[caller.callIndex - 1];
            sink.onReturn(caller.proc, caller.block, site);
            continue;
        }

        sink.onEdge(frame.proc, static_cast<std::uint32_t>(chosen));
        frame.block = proc.edge(static_cast<std::uint32_t>(chosen)).dst;
        frame.entered = false;
    }

    return result;
}

}  // namespace balign
