/**
 * @file
 * Deterministic stochastic CFG walker — the reproduction's stand-in for
 * ATOM-instrumented execution of real binaries.
 *
 * The walker executes the program model: starting at the main procedure's
 * entry block, it executes blocks, descends into calls (with a bounded call
 * stack), and chooses successors at conditional and indirect terminators
 * pseudo-randomly according to the edges' static `bias` fields. The RNG is
 * seeded, so the identical event stream can be regenerated at will; the
 * paper's methodology of using the same input for profiling and for
 * measurement falls out naturally.
 *
 * Termination: the walk runs until `instrBudget` instructions have executed.
 * When the root procedure returns and budget remains, the program restarts
 * from main (modelling a driver loop / multiple inputs), unless
 * `restartOnExit` is false.
 */

#ifndef BALIGN_TRACE_WALKER_H
#define BALIGN_TRACE_WALKER_H

#include <cstdint>

#include "cfg/program.h"
#include "trace/event.h"

namespace balign {

struct WalkOptions
{
    /// RNG seed; identical seeds yield identical event streams.
    std::uint64_t seed = 1;

    /// Stop once this many instructions have executed.
    std::uint64_t instrBudget = 1'000'000;

    /// Maximum call depth; calls at the cap are skipped entirely.
    unsigned maxCallDepth = 64;

    /// Restart from main when the root procedure returns.
    bool restartOnExit = true;
};

/// Summary of one walk.
struct WalkResult
{
    std::uint64_t instrs = 0;    ///< instructions executed
    std::uint64_t blocks = 0;    ///< block activations
    std::uint64_t calls = 0;     ///< calls taken (not skipped)
    std::uint64_t skippedCalls = 0;  ///< calls skipped at the depth cap
    std::uint64_t runs = 0;      ///< completed root activations
};

/**
 * Walks @p program, emitting events to @p sink.
 *
 * Requirements: the program must validate (cfg/validate.h); call sites
 * within a block must be sorted by offset.
 */
WalkResult walk(const Program &program, const WalkOptions &options,
                EventSink &sink);

}  // namespace balign

#endif  // BALIGN_TRACE_WALKER_H
