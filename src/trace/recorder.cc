#include "trace/recorder.h"

#include "support/log.h"

namespace balign {

void
RecordedTrace::replay(const Program &program, EventSink &sink) const
{
    const std::size_t n = ops_.size();
    std::size_t site_cursor = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto proc = procs_[i];
        const auto arg = args_[i];
        switch (static_cast<Op>(ops_[i])) {
          case Op::Block:
            sink.onBlock(proc, arg);
            break;
          case Op::Call:
            sink.onCall(proc, arg,
                        program.proc(proc).block(arg)
                            .calls[sites_[site_cursor++]]);
            break;
          case Op::Return:
            sink.onReturn(proc, arg,
                          program.proc(proc).block(arg)
                              .calls[sites_[site_cursor++]]);
            break;
          case Op::Edge:
            sink.onEdge(proc, arg);
            break;
          case Op::Exit:
            sink.onExit();
            break;
        }
    }
}

std::size_t
RecordedTrace::sizeBytes() const
{
    return ops_.capacity() * sizeof(ops_[0]) +
           procs_.capacity() * sizeof(procs_[0]) +
           args_.capacity() * sizeof(args_[0]) +
           sites_.capacity() * sizeof(sites_[0]);
}

void
TraceRecorder::push(RecordedTrace::Op op, std::uint32_t proc,
                    std::uint32_t arg)
{
    trace_.ops_.push_back(static_cast<std::uint8_t>(op));
    trace_.procs_.push_back(proc);
    trace_.args_.push_back(arg);
}

void
TraceRecorder::onBlock(ProcId proc, BlockId block)
{
    push(RecordedTrace::Op::Block, proc, block);
}

void
TraceRecorder::onCall(ProcId proc, BlockId block, const CallSite &site)
{
    const auto &calls = program_.proc(proc).block(block).calls;
    if (calls.empty() || &site < calls.data() ||
        &site >= calls.data() + calls.size())
        panic("TraceRecorder: call site not owned by the event's block");
    push(RecordedTrace::Op::Call, proc, block);
    trace_.sites_.push_back(
        static_cast<std::uint32_t>(&site - calls.data()));
}

void
TraceRecorder::onReturn(ProcId proc, BlockId block, const CallSite &site)
{
    const auto &calls = program_.proc(proc).block(block).calls;
    if (calls.empty() || &site < calls.data() ||
        &site >= calls.data() + calls.size())
        panic("TraceRecorder: return site not owned by the event's block");
    push(RecordedTrace::Op::Return, proc, block);
    trace_.sites_.push_back(
        static_cast<std::uint32_t>(&site - calls.data()));
}

void
TraceRecorder::onEdge(ProcId proc, std::uint32_t edge_index)
{
    push(RecordedTrace::Op::Edge, proc, edge_index);
}

void
TraceRecorder::onExit()
{
    push(RecordedTrace::Op::Exit, 0, 0);
}

RecordedTrace
recordTrace(const Program &program, const WalkOptions &options)
{
    TraceRecorder recorder(program);
    recorder.setWalkResult(walk(program, options, recorder));
    return recorder.take();
}

}  // namespace balign
