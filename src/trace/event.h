/**
 * @file
 * Event-sink interface for trace-driven simulation.
 *
 * The Walker (trace/walker.h) replays a program's control flow and emits a
 * stream of events. Consumers (the profiler, the branch-architecture
 * evaluators, the pipeline timing model) implement EventSink. Because a walk
 * is deterministic for a given seed, the same dynamic behaviour can be
 * replayed for every configuration; MultiSink fans a single walk out to many
 * consumers so each program is walked only once per experiment.
 *
 * Event semantics:
 *  - onBlock(p, b): block b of procedure p begins executing. Its
 *    block.numInstrs instructions all execute during this activation even if
 *    calls intervene.
 *  - onCall(p, b, site): the call at block b's given call site fires
 *    (in offset order); the callee's events follow, then onReturn.
 *  - onReturn(p, b, site): control returns to just after that call site.
 *  - onEdge(p, e): block execution finished and intra-procedure edge e of
 *    procedure p is traversed. The destination's onBlock follows.
 *  - onExit(): the walk root returned (one "run" of the program finished).
 */

#ifndef BALIGN_TRACE_EVENT_H
#define BALIGN_TRACE_EVENT_H

#include <vector>

#include "cfg/basic_block.h"
#include "support/types.h"

namespace balign {

class EventSink
{
  public:
    virtual ~EventSink() = default;

    virtual void onBlock(ProcId proc, BlockId block) = 0;
    virtual void onCall(ProcId proc, BlockId block, const CallSite &site) = 0;
    virtual void onReturn(ProcId proc, BlockId block,
                          const CallSite &site) = 0;
    virtual void onEdge(ProcId proc, std::uint32_t edge_index) = 0;
    virtual void onExit() = 0;
};

/// EventSink with empty default implementations.
class NullSink : public EventSink
{
  public:
    void onBlock(ProcId, BlockId) override {}
    void onCall(ProcId, BlockId, const CallSite &) override {}
    void onReturn(ProcId, BlockId, const CallSite &) override {}
    void onEdge(ProcId, std::uint32_t) override {}
    void onExit() override {}
};

/// Fans one event stream out to several sinks, in registration order.
class MultiSink : public EventSink
{
  public:
    void add(EventSink *sink) { sinks_.push_back(sink); }

    void
    onBlock(ProcId proc, BlockId block) override
    {
        for (auto *sink : sinks_)
            sink->onBlock(proc, block);
    }

    void
    onCall(ProcId proc, BlockId block, const CallSite &site) override
    {
        for (auto *sink : sinks_)
            sink->onCall(proc, block, site);
    }

    void
    onReturn(ProcId proc, BlockId block, const CallSite &site) override
    {
        for (auto *sink : sinks_)
            sink->onReturn(proc, block, site);
    }

    void
    onEdge(ProcId proc, std::uint32_t edge_index) override
    {
        for (auto *sink : sinks_)
            sink->onEdge(proc, edge_index);
    }

    void
    onExit() override
    {
        for (auto *sink : sinks_)
            sink->onExit();
    }

  private:
    std::vector<EventSink *> sinks_;
};

}  // namespace balign

#endif  // BALIGN_TRACE_EVENT_H
