/**
 * @file
 * Profiler: an EventSink that accumulates edge execution weights into the
 * program's CFG (the paper's ATOM-derived edge profile) and gathers the
 * dynamic halves of the Table-2 program statistics.
 */

#ifndef BALIGN_TRACE_PROFILER_H
#define BALIGN_TRACE_PROFILER_H

#include <map>

#include "cfg/cfg_stats.h"
#include "cfg/program.h"
#include "trace/event.h"

namespace balign {

/**
 * Accumulates edge weights and break-type counts. The program is mutated
 * (edge weights incremented); call Program::clearWeights() first to start a
 * fresh profile.
 */
class Profiler : public EventSink
{
  public:
    explicit Profiler(Program &program) : program_(program)
    {
        program_.setProfileProvenance(ProfileProvenance::Measured);
    }

    void onBlock(ProcId proc, BlockId block) override;
    void onCall(ProcId proc, BlockId block, const CallSite &site) override;
    void onReturn(ProcId proc, BlockId block, const CallSite &site) override;
    void onEdge(ProcId proc, std::uint32_t edge_index) override;
    void onExit() override;

    /**
     * Finished statistics: dynamic counters from this profile run plus the
     * CFG-derived static fields (fillStaticStats).
     */
    ProgramStats stats() const;

    /**
     * Dynamic call counts per (caller, callee) pair — the weighted call
     * graph used by procedure-ordering extensions.
     */
    const std::map<std::pair<ProcId, ProcId>, Weight> &
    callCounts() const
    {
        return callCounts_;
    }

  private:
    /// Counts a return if the currently executing block ends in Return.
    void noteReturn();

    Program &program_;
    ProgramStats partial_;
    std::map<std::pair<ProcId, ProcId>, Weight> callCounts_;

    ProcId curProc_ = kNoProc;
    BlockId curBlock_ = kNoBlock;
};

}  // namespace balign

#endif  // BALIGN_TRACE_PROFILER_H
