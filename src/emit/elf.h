/**
 * @file
 * Minimal relocatable ELF64 object writer (and a self-contained reader
 * for tests/CI) over a RelaxedLayout.
 *
 * The emitted object is the smallest structurally valid relocatable
 * file a linker-shaped tool can consume:
 *
 *   sections  [0] NULL
 *             [1] .text       encoded bytes of the RelaxedLayout
 *             [2] .rela.text  one R_X86_64_PLT32 per call site
 *             [3] .symtab     null + .text section symbol + one GLOBAL
 *                             STT_FUNC per procedure (value = byte base,
 *                             size = byte size)
 *             [4] .strtab
 *             [5] .shstrtab
 *
 * Call displacement fields are emitted as zero and carried by
 * relocations (r_offset = call byte address + 1, addend -4), the normal
 * call-via-symbol shape, so intra-object calls and genuinely external
 * ones look the same to a consumer. e_machine is EM_X86_64 for the
 * variable encoding model and EM_NONE for the synthetic fixed-word
 * model.
 *
 * All structures are defined here rather than taken from <elf.h> so the
 * reader side works anywhere the library builds, with no toolchain
 * dependency — that reader is what CI uses to validate emitted objects.
 */

#ifndef BALIGN_EMIT_ELF_H
#define BALIGN_EMIT_ELF_H

#include <cstdint>
#include <string>
#include <vector>

#include "cfg/program.h"
#include "emit/relax.h"

namespace balign {

/// Encodes the final text bytes of @p relaxed under @p model, in
/// instruction order. The result has exactly relaxed.totalBytes bytes;
/// call rel32 fields are zero (relocations carry them).
std::vector<std::uint8_t> encodeText(const RelaxedLayout &relaxed,
                                     const EncodingModel &model);

/// One relocation as written/parsed.
struct ElfRelocation
{
    std::uint64_t offset = 0;    ///< byte offset into .text
    std::uint32_t symbol = 0;    ///< symtab index
    std::uint32_t type = 0;      ///< R_X86_64_PLT32 for calls
    std::int64_t addend = 0;
};

/// One symbol as written/parsed.
struct ElfSymbolInfo
{
    std::string name;
    std::uint64_t value = 0;
    std::uint64_t size = 0;
    std::uint8_t info = 0;     ///< (bind << 4) | type
    std::uint16_t shndx = 0;
};

/// Serializes @p relaxed as a relocatable ELF64 object.
std::vector<std::uint8_t> buildElfObject(const Program &program,
                                         const RelaxedLayout &relaxed,
                                         const EncodingModel &model);

/// buildElfObject + write to @p path. Returns false (with a warning) on
/// I/O failure.
bool writeElfObject(const std::string &path, const Program &program,
                    const RelaxedLayout &relaxed,
                    const EncodingModel &model);

/// Parsed view of a relocatable object (reader side; test/CI use).
struct ParsedElf
{
    bool ok = false;
    std::string error;  ///< first structural problem when !ok

    std::uint16_t type = 0;     ///< e_type
    std::uint16_t machine = 0;  ///< e_machine
    std::vector<std::string> sectionNames;  ///< in header-table order
    std::vector<std::uint8_t> text;
    std::vector<ElfSymbolInfo> symbols;     ///< full symtab, index order
    std::vector<ElfRelocation> relocations;
};

/**
 * Structurally validates and decodes @p bytes. Checks the identification
 * magic, 64-bit little-endian class, ET_REL type, section-header bounds,
 * section payload bounds, the section name table, symbol string offsets
 * and relocation offsets against the text size. Never reads out of
 * bounds on malformed input; the first violation lands in error.
 */
ParsedElf parseElfObject(const std::vector<std::uint8_t> &bytes);

}  // namespace balign

#endif  // BALIGN_EMIT_ELF_H
