#include "emit/encoding.h"

#include <limits>

#include "support/log.h"
#include "support/types.h"

namespace balign {

namespace {

void
appendLe32(std::vector<std::uint8_t> &out, std::int64_t value)
{
    const auto v = static_cast<std::uint32_t>(value);
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

/**
 * Legacy model: every slot is one kInstrBytes word and nothing relaxes.
 * The synthetic encoding is a class tag byte followed by the low three
 * bytes of the displacement (zero for non-branches) — deterministic and
 * self-describing, so the ELF round-trip tests can check text bytes
 * without an external toolchain.
 */
class FixedWordModel final : public EncodingModel
{
  public:
    EncodingModelKind kind() const override
    {
        return EncodingModelKind::FixedWord;
    }
    const char *name() const override { return "fixed-word"; }

    unsigned
    instrBytes(InstrClass /*cls*/, BranchForm /*form*/) const override
    {
        return kInstrBytes;
    }

    bool relaxable(InstrClass /*cls*/) const override { return false; }

    bool
    displacementFits(InstrClass /*cls*/, BranchForm /*form*/,
                     std::int64_t disp) const override
    {
        // Three displacement bytes in the synthetic record.
        return disp >= -(1 << 23) && disp < (1 << 23);
    }

    void
    encode(InstrClass cls, BranchForm /*form*/, std::int64_t disp,
           std::vector<std::uint8_t> &out) const override
    {
        const auto v = static_cast<std::uint32_t>(disp);
        out.push_back(static_cast<std::uint8_t>(0xb0 +
                                                static_cast<unsigned>(cls)));
        out.push_back(static_cast<std::uint8_t>(v & 0xff));
        out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
        out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    }
};

/**
 * x86-64-flavoured variable-length model:
 *
 *   Body          0F 1F 40 00         4  (canonical 4-byte nop)
 *   Call          E8 rel32            5  (rel32 zero; relocation fills)
 *   CondBranch    74 rel8             2  short
 *                 0F 84 rel32         6  near
 *   Jump          EB rel8             2  short
 *                 E9 rel32            5  near
 *   IndirectJump  FF E0               2
 *   Return        C3                  1
 *
 * Condition codes are modelled uniformly as JE/JZ: the IR carries branch
 * *realizations*, not concrete predicates, and relaxation only needs
 * sizes to be right.
 */
class VariableModel final : public EncodingModel
{
  public:
    EncodingModelKind kind() const override
    {
        return EncodingModelKind::Variable;
    }
    const char *name() const override { return "variable"; }

    unsigned
    instrBytes(InstrClass cls, BranchForm form) const override
    {
        switch (cls) {
          case InstrClass::Body: return 4;
          case InstrClass::Call: return 5;
          case InstrClass::CondBranch:
            return form == BranchForm::Short ? 2 : 6;
          case InstrClass::Jump:
            return form == BranchForm::Short ? 2 : 5;
          case InstrClass::IndirectJump: return 2;
          case InstrClass::Return: return 1;
        }
        panic("VariableModel::instrBytes: bad class");
    }

    bool
    relaxable(InstrClass cls) const override
    {
        return cls == InstrClass::CondBranch || cls == InstrClass::Jump;
    }

    bool
    displacementFits(InstrClass cls, BranchForm form,
                     std::int64_t disp) const override
    {
        if (!relaxable(cls))
            return true;
        if (form == BranchForm::Short)
            return disp >= -128 && disp <= 127;
        return disp >= std::numeric_limits<std::int32_t>::min() &&
               disp <= std::numeric_limits<std::int32_t>::max();
    }

    void
    encode(InstrClass cls, BranchForm form, std::int64_t disp,
           std::vector<std::uint8_t> &out) const override
    {
        switch (cls) {
          case InstrClass::Body:
            out.insert(out.end(), {0x0f, 0x1f, 0x40, 0x00});
            return;
          case InstrClass::Call:
            out.push_back(0xe8);
            appendLe32(out, 0);  // relocation fills rel32
            return;
          case InstrClass::CondBranch:
            if (form == BranchForm::Short) {
                out.push_back(0x74);
                out.push_back(static_cast<std::uint8_t>(disp));
            } else {
                out.push_back(0x0f);
                out.push_back(0x84);
                appendLe32(out, disp);
            }
            return;
          case InstrClass::Jump:
            if (form == BranchForm::Short) {
                out.push_back(0xeb);
                out.push_back(static_cast<std::uint8_t>(disp));
            } else {
                out.push_back(0xe9);
                appendLe32(out, disp);
            }
            return;
          case InstrClass::IndirectJump:
            out.insert(out.end(), {0xff, 0xe0});
            return;
          case InstrClass::Return:
            out.push_back(0xc3);
            return;
        }
        panic("VariableModel::encode: bad class");
    }
};

}  // namespace

const char *
branchFormName(BranchForm form)
{
    switch (form) {
      case BranchForm::None: return "none";
      case BranchForm::Short: return "short";
      case BranchForm::Near: return "near";
    }
    return "?";
}

const char *
encodingModelKindName(EncodingModelKind kind)
{
    switch (kind) {
      case EncodingModelKind::FixedWord: return "fixed-word";
      case EncodingModelKind::Variable: return "variable";
    }
    return "?";
}

std::optional<EncodingModelKind>
parseEncodingModelKind(std::string_view name)
{
    if (name == "fixed-word" || name == "fixed" || name == "word")
        return EncodingModelKind::FixedWord;
    if (name == "variable" || name == "var" || name == "x86")
        return EncodingModelKind::Variable;
    return std::nullopt;
}

const std::vector<EncodingModelKind> &
allEncodingModelKinds()
{
    static const std::vector<EncodingModelKind> kinds = {
        EncodingModelKind::FixedWord,
        EncodingModelKind::Variable,
    };
    return kinds;
}

const EncodingModel &
encodingModel(EncodingModelKind kind)
{
    static const FixedWordModel fixed;
    static const VariableModel variable;
    switch (kind) {
      case EncodingModelKind::FixedWord: return fixed;
      case EncodingModelKind::Variable: return variable;
    }
    panic("encodingModel: bad kind");
}

}  // namespace balign
