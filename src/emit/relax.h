/**
 * @file
 * GAS-style fragment relaxation: assigns each branch a short or near
 * form and iterates to a fixpoint of final byte addresses.
 *
 * The algorithm is the classic relax_segment loop (GNU as write.c; see
 * SNIPPETS.md §1-2 for the freewilll/was rendition): start every
 * relaxable instruction at its SHORT form, compute byte addresses, grow
 * any branch whose displacement does not fit its current form, repeat
 * until a sweep changes nothing. Growth is monotone — a branch never
 * shrinks back — so each sweep either grows at least one branch or
 * terminates, bounding the iteration count by the number of relaxable
 * instructions plus one. A configurable cap (RelaxOptions::maxIterations)
 * backstops that argument: hitting it marks the layout unconverged and
 * names the offending branch in RelaxedLayout::diagnostic rather than
 * looping or panicking.
 *
 * Relaxation is per-procedure: conditional branches and jumps only
 * target same-procedure blocks, and calls are fixed-size under every
 * model (their displacement is a relocation), so one procedure's form
 * choices never depend on another's. Procedure byte bases are assigned
 * cumulatively afterwards, which also makes the per-procedure result
 * rebase-invariant — the property SizeAwareObjective's layoutCost needs.
 *
 * Under the FixedWord model nothing is relaxable, the loop converges in
 * a single clean sweep, and every byte address is exactly kInstrBytes
 * times the word address (pinned by ctest -L emit).
 */

#ifndef BALIGN_EMIT_RELAX_H
#define BALIGN_EMIT_RELAX_H

#include <string>
#include <vector>

#include "emit/encoding.h"
#include "layout/layout_result.h"
#include "layout/materialize.h"

namespace balign {

/// One instruction slot with its final form, byte address and size.
struct RelaxedInstr
{
    InstrClass cls = InstrClass::Body;
    BranchForm form = BranchForm::None;

    /// Word-model address (copied from the LayoutInstr enumeration).
    Addr wordAddr = kNoAddr;

    /// Final byte address (program-global after relaxLayout; procedure-
    /// local, starting at 0, in a bare ProcRelaxation).
    std::uint64_t byteAddr = 0;

    /// Encoded size in bytes: model.instrBytes(cls, form).
    std::uint8_t size = 0;

    ProcId proc = kNoProc;
    BlockId block = kNoBlock;

    /// For CondBranch/Jump: destination block (same procedure).
    BlockId targetBlock = kNoBlock;

    /// For Call: callee procedure (displacement left to a relocation).
    ProcId callee = kNoProc;

    /// Final displacement, measured from the end of the instruction:
    /// target byte address - (byteAddr + size). Zero for non-branches
    /// and calls.
    std::int64_t disp = 0;
};

/// Byte placement of one block.
struct RelaxedBlock
{
    std::uint64_t byteAddr = 0;  ///< byte address of the first slot
    std::uint32_t byteSize = 0;  ///< total encoded bytes of the block
    std::uint32_t firstInstr = 0;  ///< index into the instrs vector
    std::uint32_t numInstrs = 0;   ///< slot count (== finalInstrs)
};

/// Result of relaxing one procedure (byte addresses procedure-local).
struct ProcRelaxation
{
    /// Slots in address order; byteAddr starts at 0.
    std::vector<RelaxedInstr> instrs;

    /// Per-block placement, indexed by BlockId.
    std::vector<RelaxedBlock> blocks;

    /// Total encoded bytes of the procedure.
    std::uint64_t byteSize = 0;

    /// Sweeps performed, including the final clean sweep (>= 1).
    std::uint32_t iterations = 0;

    /// False when the iteration cap was hit before a clean sweep.
    bool converged = true;

    /// Human-readable reason when unconverged (names the branch whose
    /// displacement still escapes its form).
    std::string diagnostic;

    /// Relaxable slots by final form.
    std::uint64_t shortBranches = 0;
    std::uint64_t nearBranches = 0;
};

/// Byte placement of one procedure within a RelaxedLayout.
struct RelaxedProc
{
    std::uint64_t byteBase = 0;  ///< program-global byte base
    std::uint64_t byteSize = 0;
    std::vector<RelaxedBlock> blocks;  ///< global byte addresses
    std::uint32_t firstInstr = 0;  ///< index into RelaxedLayout::instrs
    std::uint32_t numInstrs = 0;
    bool converged = true;
    std::uint32_t iterations = 0;
};

/// Program-wide relaxation result: the final byte layout.
struct RelaxedLayout
{
    EncodingModelKind model = EncodingModelKind::FixedWord;
    std::vector<RelaxedProc> procs;

    /// Every slot, procedures in id order, program-global byte addresses.
    std::vector<RelaxedInstr> instrs;

    std::uint64_t totalBytes = 0;

    /// Max per-procedure sweep count.
    std::uint32_t iterations = 0;

    /// True when every procedure reached a fixpoint under the cap.
    bool converged = true;

    /// First unconverged procedure's diagnostic, empty when converged.
    std::string diagnostic;

    std::uint64_t shortBranches = 0;
    std::uint64_t nearBranches = 0;
};

struct RelaxOptions
{
    /// Sweep cap; the monotone-growth argument bounds real convergence
    /// well below this for any sane procedure.
    unsigned maxIterations = 64;
};

/// Relaxes one procedure of @p layout under @p model. Byte addresses in
/// the result are procedure-local (base 0).
ProcRelaxation relaxProc(const Procedure &proc, const ProcLayout &layout,
                         const EncodingModel &model,
                         const RelaxOptions &options = {});

/// Relaxes a whole program layout: per-procedure fixpoints, then
/// cumulative byte bases in procedure id order.
RelaxedLayout relaxLayout(const Program &program,
                          const ProgramLayout &layout,
                          const EncodingModel &model,
                          const RelaxOptions &options = {});

}  // namespace balign

#endif  // BALIGN_EMIT_RELAX_H
