/**
 * @file
 * Pluggable instruction-encoding models.
 *
 * The rest of the library addresses in fixed 4-byte instruction words
 * (support/types.h); this module is the seam where that assumption
 * becomes a *model choice*. An EncodingModel maps each laid-out
 * instruction slot (layout/layout_result.h InstrClass) to a byte size
 * given the branch form chosen for it, decides which classes are
 * relaxable (can shrink to a short form when the displacement fits), and
 * encodes the final bytes the ELF writer emits.
 *
 * Two models exist:
 *
 *  - FixedWord: the legacy model. Every slot is exactly kInstrBytes
 *    bytes, nothing is relaxable, and relaxed byte addresses are exactly
 *    4x the word addresses — the invariant the emit test-suite pins so
 *    selecting this model is byte-identical to pre-emit behaviour.
 *  - Variable: an x86-64-flavoured model with short (rel8) and near
 *    (rel32) branch forms. This is what makes fragment relaxation
 *    (emit/relax.h) non-trivial: a branch that fits rel8 saves bytes,
 *    which moves later addresses, which can let further branches shrink.
 *
 * Displacements are measured from the END of the encoded instruction
 * (x86 convention): disp = target byte address - (instr byte address +
 * instr size).
 */

#ifndef BALIGN_EMIT_ENCODING_H
#define BALIGN_EMIT_ENCODING_H

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "layout/layout_result.h"

namespace balign {

/// The encoding models the library knows.
enum class EncodingModelKind : std::uint8_t {
    FixedWord,  ///< legacy 4-byte words, no relaxation
    Variable,   ///< x86-64-flavoured short/near branch forms
};

/// Branch form chosen for one instruction slot.
enum class BranchForm : std::uint8_t {
    None,   ///< class is not relaxable under the model
    Short,  ///< rel8 form (displacement in [-128, 127])
    Near,   ///< rel32 form
};

/// Printable form name ("none" / "short" / "near").
const char *branchFormName(BranchForm form);

/// Printable kind name ("fixed-word" / "variable").
const char *encodingModelKindName(EncodingModelKind kind);

/// Inverse of encodingModelKindName; nullopt for unknown names.
std::optional<EncodingModelKind>
parseEncodingModelKind(std::string_view name);

/// Every encoding model the library knows.
const std::vector<EncodingModelKind> &allEncodingModelKinds();

/**
 * One instruction-encoding model. Stateless; obtain the shared instance
 * via encodingModel(). All sizes are in bytes.
 */
class EncodingModel
{
  public:
    virtual ~EncodingModel() = default;

    virtual EncodingModelKind kind() const = 0;

    /// Human-readable name ("fixed-word", "variable").
    virtual const char *name() const = 0;

    /**
     * Encoded size of a @p cls slot in @p form. For non-relaxable
     * classes @p form must be BranchForm::None; for relaxable classes it
     * must be Short or Near.
     */
    virtual unsigned instrBytes(InstrClass cls, BranchForm form) const = 0;

    /// True when @p cls has distinct short/near forms the relaxation
    /// pass chooses between.
    virtual bool relaxable(InstrClass cls) const = 0;

    /**
     * True when @p disp (bytes, measured from the end of the encoded
     * instruction) is representable by @p cls in @p form.
     */
    virtual bool displacementFits(InstrClass cls, BranchForm form,
                                  std::int64_t disp) const = 0;

    /**
     * Appends the encoded bytes of one slot to @p out. @p disp is the
     * final displacement for branch classes and ignored elsewhere; call
     * displacement fields are emitted as zero (a relocation fills them).
     * Appends exactly instrBytes(cls, form) bytes.
     */
    virtual void encode(InstrClass cls, BranchForm form, std::int64_t disp,
                        std::vector<std::uint8_t> &out) const = 0;

    /// The form the relaxation pass starts @p cls at: Short when
    /// relaxable, None otherwise.
    BranchForm
    initialForm(InstrClass cls) const
    {
        return relaxable(cls) ? BranchForm::Short : BranchForm::None;
    }
};

/// Shared immutable instance of the model for @p kind.
const EncodingModel &encodingModel(EncodingModelKind kind);

}  // namespace balign

#endif  // BALIGN_EMIT_ENCODING_H
