#include "emit/relax.h"

#include <algorithm>
#include <sstream>

#include "support/log.h"

namespace balign {

ProcRelaxation
relaxProc(const Procedure &proc, const ProcLayout &layout,
          const EncodingModel &model, const RelaxOptions &options)
{
    ProcRelaxation result;

    const std::vector<LayoutInstr> slots = enumerateProcInstrs(proc, layout);
    result.instrs.resize(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
        RelaxedInstr &instr = result.instrs[i];
        instr.cls = slots[i].cls;
        instr.form = model.initialForm(slots[i].cls);
        instr.wordAddr = slots[i].wordAddr;
        instr.proc = slots[i].proc;
        instr.block = slots[i].block;
        instr.targetBlock = slots[i].targetBlock;
        instr.callee = slots[i].callee;
    }

    // Block slot ranges: slots are emitted in layout order, finalInstrs
    // slots per block, so ranges fall out of a running count.
    result.blocks.resize(layout.blocks.size());
    {
        std::uint32_t first = 0;
        for (const BlockId id : layout.order) {
            RelaxedBlock &block = result.blocks[id];
            block.firstInstr = first;
            block.numInstrs = layout.blocks[id].finalInstrs;
            first += block.numInstrs;
        }
        if (first != result.instrs.size())
            panic("relaxProc(%s): %u block slots vs %zu enumerated",
                  proc.name().c_str(), first, result.instrs.size());
    }

    // The relax_segment loop: recompute byte addresses, grow any branch
    // whose displacement escapes its current form, repeat. Growth is
    // monotone (Short -> Near, never back), so each sweep that changes
    // anything strictly shrinks the set of growable branches.
    const std::size_t unconverged_sentinel = result.instrs.size();
    std::size_t unconverged = unconverged_sentinel;
    for (result.iterations = 0; result.iterations < options.maxIterations;) {
        ++result.iterations;

        std::uint64_t addr = 0;
        for (RelaxedInstr &instr : result.instrs) {
            instr.byteAddr = addr;
            instr.size = static_cast<std::uint8_t>(
                model.instrBytes(instr.cls, instr.form));
            addr += instr.size;
        }
        result.byteSize = addr;
        for (const BlockId id : layout.order) {
            RelaxedBlock &block = result.blocks[id];
            block.byteAddr = block.numInstrs > 0
                                 ? result.instrs[block.firstInstr].byteAddr
                                 : (block.firstInstr < result.instrs.size()
                                        ? result.instrs[block.firstInstr]
                                              .byteAddr
                                        : addr);
            std::uint32_t bytes = 0;
            for (std::uint32_t s = 0; s < block.numInstrs; ++s)
                bytes += result.instrs[block.firstInstr + s].size;
            block.byteSize = bytes;
        }

        bool grew = false;
        unconverged = unconverged_sentinel;
        for (std::size_t i = 0; i < result.instrs.size(); ++i) {
            RelaxedInstr &instr = result.instrs[i];
            if (instr.targetBlock == kNoBlock) {
                instr.disp = 0;
                continue;
            }
            const std::uint64_t target =
                result.blocks[instr.targetBlock].byteAddr;
            instr.disp = static_cast<std::int64_t>(target) -
                         static_cast<std::int64_t>(instr.byteAddr +
                                                   instr.size);
            if (!model.displacementFits(instr.cls, instr.form, instr.disp)) {
                if (model.relaxable(instr.cls) &&
                    instr.form == BranchForm::Short) {
                    instr.form = BranchForm::Near;
                    grew = true;
                } else if (unconverged == unconverged_sentinel) {
                    // The widest form never fits: unreachable with rel32
                    // ranges, but keep relaxation total rather than
                    // trusting it.
                    unconverged = i;
                }
            }
        }
        if (!grew) {
            if (unconverged != unconverged_sentinel)
                break;
            // Clean sweep: addresses, sizes and displacements are all
            // mutually consistent. Done.
            for (const RelaxedInstr &instr : result.instrs) {
                if (!model.relaxable(instr.cls))
                    continue;
                if (instr.form == BranchForm::Short)
                    ++result.shortBranches;
                else
                    ++result.nearBranches;
            }
            return result;
        }
    }

    // Cap hit (or a displacement no form can hold): report, don't loop.
    result.converged = false;
    if (unconverged == unconverged_sentinel) {
        for (std::size_t i = 0; i < result.instrs.size(); ++i) {
            const RelaxedInstr &instr = result.instrs[i];
            if (instr.targetBlock != kNoBlock &&
                !model.displacementFits(instr.cls, instr.form, instr.disp)) {
                unconverged = i;
                break;
            }
        }
    }
    std::ostringstream out;
    out << "relaxation of " << proc.name() << " stopped after "
        << result.iterations << " sweeps";
    if (unconverged != unconverged_sentinel) {
        const RelaxedInstr &instr = result.instrs[unconverged];
        out << ": " << instrClassName(instr.cls) << " at word "
            << instr.wordAddr << " (block " << instr.block << " -> block "
            << instr.targetBlock << ") displacement " << instr.disp
            << " escapes its " << branchFormName(instr.form) << " form";
    } else {
        out << " without a clean pass";
    }
    result.diagnostic = out.str();
    for (const RelaxedInstr &instr : result.instrs) {
        if (!model.relaxable(instr.cls))
            continue;
        if (instr.form == BranchForm::Short)
            ++result.shortBranches;
        else
            ++result.nearBranches;
    }
    return result;
}

RelaxedLayout
relaxLayout(const Program &program, const ProgramLayout &layout,
            const EncodingModel &model, const RelaxOptions &options)
{
    RelaxedLayout result;
    result.model = model.kind();
    result.procs.resize(program.numProcs());

    std::uint64_t base = 0;
    for (const auto &proc : program.procs()) {
        ProcRelaxation relaxed =
            relaxProc(proc, layout.procs[proc.id()], model, options);

        RelaxedProc &placed = result.procs[proc.id()];
        placed.byteBase = base;
        placed.byteSize = relaxed.byteSize;
        placed.firstInstr = static_cast<std::uint32_t>(result.instrs.size());
        placed.numInstrs = static_cast<std::uint32_t>(relaxed.instrs.size());
        placed.converged = relaxed.converged;
        placed.iterations = relaxed.iterations;
        placed.blocks = std::move(relaxed.blocks);
        for (RelaxedBlock &block : placed.blocks) {
            block.byteAddr += base;
            // Rebase the slot range too: in a RelaxedLayout the blocks
            // index the program-wide instrs vector.
            block.firstInstr += placed.firstInstr;
        }
        for (RelaxedInstr &instr : relaxed.instrs) {
            instr.byteAddr += base;
            result.instrs.push_back(instr);
        }

        result.iterations = std::max(result.iterations, relaxed.iterations);
        result.shortBranches += relaxed.shortBranches;
        result.nearBranches += relaxed.nearBranches;
        if (!relaxed.converged) {
            result.converged = false;
            if (result.diagnostic.empty())
                result.diagnostic = std::move(relaxed.diagnostic);
        }
        base += relaxed.byteSize;
    }
    result.totalBytes = base;
    return result;
}

}  // namespace balign
