#include "emit/elf.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "support/log.h"

namespace balign {

namespace {

// ELF constants used here (names match the spec).
constexpr std::uint8_t kElfClass64 = 2;
constexpr std::uint8_t kElfData2Lsb = 1;
constexpr std::uint8_t kEvCurrent = 1;
constexpr std::uint16_t kEtRel = 1;
constexpr std::uint16_t kEmNone = 0;
constexpr std::uint16_t kEmX8664 = 62;
constexpr std::uint32_t kShtProgbits = 1;
constexpr std::uint32_t kShtSymtab = 2;
constexpr std::uint32_t kShtStrtab = 3;
constexpr std::uint32_t kShtRela = 4;
constexpr std::uint64_t kShfAlloc = 0x2;
constexpr std::uint64_t kShfExecinstr = 0x4;
constexpr std::uint64_t kShfInfoLink = 0x40;
constexpr std::uint8_t kStbGlobal = 1;
constexpr std::uint8_t kSttSection = 3;
constexpr std::uint8_t kSttFunc = 2;
constexpr std::uint32_t kRX8664Plt32 = 4;

#pragma pack(push, 1)
struct Ehdr
{
    std::uint8_t ident[16];
    std::uint16_t type;
    std::uint16_t machine;
    std::uint32_t version;
    std::uint64_t entry;
    std::uint64_t phoff;
    std::uint64_t shoff;
    std::uint32_t flags;
    std::uint16_t ehsize;
    std::uint16_t phentsize;
    std::uint16_t phnum;
    std::uint16_t shentsize;
    std::uint16_t shnum;
    std::uint16_t shstrndx;
};

struct Shdr
{
    std::uint32_t name;
    std::uint32_t type;
    std::uint64_t flags;
    std::uint64_t addr;
    std::uint64_t offset;
    std::uint64_t size;
    std::uint32_t link;
    std::uint32_t info;
    std::uint64_t addralign;
    std::uint64_t entsize;
};

struct Sym
{
    std::uint32_t name;
    std::uint8_t info;
    std::uint8_t other;
    std::uint16_t shndx;
    std::uint64_t value;
    std::uint64_t size;
};

struct Rela
{
    std::uint64_t offset;
    std::uint64_t info;
    std::int64_t addend;
};
#pragma pack(pop)

static_assert(sizeof(Ehdr) == 64, "Ehdr layout");
static_assert(sizeof(Shdr) == 64, "Shdr layout");
static_assert(sizeof(Sym) == 24, "Sym layout");
static_assert(sizeof(Rela) == 24, "Rela layout");

/// Incrementally built string table; offset 0 is the empty string.
class StringTable
{
  public:
    StringTable() : bytes_(1, 0) {}

    std::uint32_t
    add(const std::string &name)
    {
        const auto offset = static_cast<std::uint32_t>(bytes_.size());
        bytes_.insert(bytes_.end(), name.begin(), name.end());
        bytes_.push_back(0);
        return offset;
    }

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
};

template <typename T>
void
appendStruct(std::vector<std::uint8_t> &out, const T &value)
{
    const auto *raw = reinterpret_cast<const std::uint8_t *>(&value);
    out.insert(out.end(), raw, raw + sizeof(T));
}

}  // namespace

std::vector<std::uint8_t>
encodeText(const RelaxedLayout &relaxed, const EncodingModel &model)
{
    std::vector<std::uint8_t> text;
    text.reserve(relaxed.totalBytes);
    for (const RelaxedInstr &instr : relaxed.instrs) {
        const std::size_t before = text.size();
        // Calls carry their displacement in a relocation, not the bytes.
        const std::int64_t disp =
            instr.cls == InstrClass::Call ? 0 : instr.disp;
        model.encode(instr.cls, instr.form, disp, text);
        if (text.size() - before != instr.size)
            panic("encodeText: %s/%s encoded %zu bytes, relaxed to %u",
                  instrClassName(instr.cls), branchFormName(instr.form),
                  text.size() - before, instr.size);
    }
    if (text.size() != relaxed.totalBytes)
        panic("encodeText: %zu bytes encoded, %llu relaxed", text.size(),
              static_cast<unsigned long long>(relaxed.totalBytes));
    return text;
}

std::vector<std::uint8_t>
buildElfObject(const Program &program, const RelaxedLayout &relaxed,
               const EncodingModel &model)
{
    const std::vector<std::uint8_t> text = encodeText(relaxed, model);

    // Symbol table: null, .text section symbol, then one GLOBAL STT_FUNC
    // per procedure in id order (symtab index = 2 + ProcId). sh_info is
    // the index of the first global (2).
    StringTable strtab;
    std::vector<std::uint8_t> symtab;
    {
        Sym null_sym{};
        appendStruct(symtab, null_sym);
        Sym text_sym{};
        text_sym.info = kSttSection;  // STB_LOCAL << 4 | STT_SECTION
        text_sym.shndx = 1;
        appendStruct(symtab, text_sym);
        for (const auto &proc : program.procs()) {
            Sym sym{};
            sym.name = strtab.add(proc.name());
            sym.info = static_cast<std::uint8_t>((kStbGlobal << 4) |
                                                 kSttFunc);
            sym.shndx = 1;
            sym.value = relaxed.procs[proc.id()].byteBase;
            sym.size = relaxed.procs[proc.id()].byteSize;
            appendStruct(symtab, sym);
        }
    }

    // Relocations: one per call site, against the callee's symbol. The
    // rel32 field starts one byte after the opcode under both models.
    std::vector<std::uint8_t> rela;
    for (const RelaxedInstr &instr : relaxed.instrs) {
        if (instr.cls != InstrClass::Call || instr.callee == kNoProc)
            continue;
        Rela entry{};
        entry.offset = instr.byteAddr + 1;
        entry.info = (static_cast<std::uint64_t>(2 + instr.callee) << 32) |
                     kRX8664Plt32;
        entry.addend = -4;
        appendStruct(rela, entry);
    }

    StringTable shstrtab;
    const char *section_names[6] = {"",        ".text",   ".rela.text",
                                    ".symtab", ".strtab", ".shstrtab"};
    std::uint32_t name_offsets[6] = {};
    for (int i = 1; i < 6; ++i)
        name_offsets[i] = shstrtab.add(section_names[i]);

    // Lay the file out: header, section payloads (8-byte aligned), then
    // the section header table.
    const std::vector<std::uint8_t> *payloads[6] = {
        nullptr, &text, &rela, &symtab, &strtab.bytes(), &shstrtab.bytes()};
    std::uint64_t offsets[6] = {};
    std::uint64_t cursor = sizeof(Ehdr);
    for (int i = 1; i < 6; ++i) {
        cursor = (cursor + 7) & ~std::uint64_t{7};
        offsets[i] = cursor;
        cursor += payloads[i]->size();
    }
    cursor = (cursor + 7) & ~std::uint64_t{7};
    const std::uint64_t shoff = cursor;

    Ehdr ehdr{};
    std::memcpy(ehdr.ident, "\x7f"
                            "ELF",
                4);
    ehdr.ident[4] = kElfClass64;
    ehdr.ident[5] = kElfData2Lsb;
    ehdr.ident[6] = kEvCurrent;
    ehdr.type = kEtRel;
    ehdr.machine = model.kind() == EncodingModelKind::Variable ? kEmX8664
                                                               : kEmNone;
    ehdr.version = kEvCurrent;
    ehdr.shoff = shoff;
    ehdr.ehsize = sizeof(Ehdr);
    ehdr.shentsize = sizeof(Shdr);
    ehdr.shnum = 6;
    ehdr.shstrndx = 5;

    Shdr shdrs[6] = {};
    auto set = [&](int i, std::uint32_t type, std::uint64_t flags,
                   std::uint32_t link, std::uint32_t info,
                   std::uint64_t addralign, std::uint64_t entsize) {
        shdrs[i].name = name_offsets[i];
        shdrs[i].type = type;
        shdrs[i].flags = flags;
        shdrs[i].offset = offsets[i];
        shdrs[i].size = payloads[i]->size();
        shdrs[i].link = link;
        shdrs[i].info = info;
        shdrs[i].addralign = addralign;
        shdrs[i].entsize = entsize;
    };
    set(1, kShtProgbits, kShfAlloc | kShfExecinstr, 0, 0, 16, 0);
    set(2, kShtRela, kShfInfoLink, 3, 1, 8, sizeof(Rela));
    set(3, kShtSymtab, 0, 4, 2, 8, sizeof(Sym));
    set(4, kShtStrtab, 0, 0, 0, 1, 0);
    set(5, kShtStrtab, 0, 0, 0, 1, 0);

    std::vector<std::uint8_t> out;
    out.reserve(shoff + 6 * sizeof(Shdr));
    appendStruct(out, ehdr);
    for (int i = 1; i < 6; ++i) {
        out.resize(offsets[i], 0);
        out.insert(out.end(), payloads[i]->begin(), payloads[i]->end());
    }
    out.resize(shoff, 0);
    for (const Shdr &shdr : shdrs)
        appendStruct(out, shdr);
    return out;
}

bool
writeElfObject(const std::string &path, const Program &program,
               const RelaxedLayout &relaxed, const EncodingModel &model)
{
    const std::vector<std::uint8_t> bytes =
        buildElfObject(program, relaxed, model);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        warn("emit: cannot open %s for writing", path.c_str());
        return false;
    }
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
        warn("emit: short write to %s", path.c_str());
        return false;
    }
    return true;
}

namespace {

/// Bounds-checked struct read; false (untouched output) when the range
/// escapes the buffer.
template <typename T>
bool
readStruct(const std::vector<std::uint8_t> &bytes, std::uint64_t offset,
           T &out)
{
    if (offset > bytes.size() || bytes.size() - offset < sizeof(T))
        return false;
    std::memcpy(&out, bytes.data() + offset, sizeof(T));
    return true;
}

/// NUL-terminated string at @p offset of a string-table payload.
bool
readName(const std::vector<std::uint8_t> &table, std::uint64_t offset,
         std::string &out)
{
    if (offset >= table.size())
        return false;
    const auto *begin = table.data() + offset;
    const auto *end = table.data() + table.size();
    const auto *nul = std::find(begin, end, std::uint8_t{0});
    if (nul == end)
        return false;
    out.assign(reinterpret_cast<const char *>(begin),
               static_cast<std::size_t>(nul - begin));
    return true;
}

}  // namespace

ParsedElf
parseElfObject(const std::vector<std::uint8_t> &bytes)
{
    ParsedElf parsed;
    auto fail = [&parsed](const char *why) -> ParsedElf & {
        parsed.ok = false;
        parsed.error = why;
        return parsed;
    };

    Ehdr ehdr{};
    if (!readStruct(bytes, 0, ehdr))
        return fail("file shorter than an ELF header");
    if (std::memcmp(ehdr.ident,
                    "\x7f"
                    "ELF",
                    4) != 0)
        return fail("bad ELF magic");
    if (ehdr.ident[4] != kElfClass64)
        return fail("not ELFCLASS64");
    if (ehdr.ident[5] != kElfData2Lsb)
        return fail("not little-endian");
    if (ehdr.type != kEtRel)
        return fail("not a relocatable (ET_REL) object");
    if (ehdr.shentsize != sizeof(Shdr))
        return fail("unexpected section header entry size");
    parsed.type = ehdr.type;
    parsed.machine = ehdr.machine;

    if (ehdr.shnum == 0)
        return fail("no sections");
    std::vector<Shdr> shdrs(ehdr.shnum);
    for (std::uint16_t i = 0; i < ehdr.shnum; ++i) {
        if (!readStruct(bytes, ehdr.shoff + i * sizeof(Shdr), shdrs[i]))
            return fail("section header table out of bounds");
    }
    if (ehdr.shstrndx >= ehdr.shnum)
        return fail("e_shstrndx out of range");

    auto payload = [&bytes](const Shdr &shdr,
                            std::vector<std::uint8_t> &out) {
        if (shdr.offset > bytes.size() ||
            bytes.size() - shdr.offset < shdr.size)
            return false;
        out.assign(bytes.begin() + static_cast<std::ptrdiff_t>(shdr.offset),
                   bytes.begin() +
                       static_cast<std::ptrdiff_t>(shdr.offset + shdr.size));
        return true;
    };

    std::vector<std::uint8_t> shstrtab;
    if (!payload(shdrs[ehdr.shstrndx], shstrtab))
        return fail("section name table out of bounds");
    for (const Shdr &shdr : shdrs) {
        std::string name;
        if (!readName(shstrtab, shdr.name, name) && shdr.name != 0)
            return fail("section name offset out of bounds");
        parsed.sectionNames.push_back(name);
    }

    int text_index = -1, symtab_index = -1, strtab_index = -1,
        rela_index = -1;
    for (std::size_t i = 0; i < parsed.sectionNames.size(); ++i) {
        if (parsed.sectionNames[i] == ".text")
            text_index = static_cast<int>(i);
        else if (parsed.sectionNames[i] == ".symtab")
            symtab_index = static_cast<int>(i);
        else if (parsed.sectionNames[i] == ".strtab")
            strtab_index = static_cast<int>(i);
        else if (parsed.sectionNames[i] == ".rela.text")
            rela_index = static_cast<int>(i);
    }
    if (text_index < 0)
        return fail("no .text section");
    if (symtab_index < 0 || strtab_index < 0)
        return fail("no symbol table");
    if (!payload(shdrs[text_index], parsed.text))
        return fail(".text payload out of bounds");

    std::vector<std::uint8_t> symtab, strtab;
    if (!payload(shdrs[symtab_index], symtab))
        return fail(".symtab payload out of bounds");
    if (!payload(shdrs[strtab_index], strtab))
        return fail(".strtab payload out of bounds");
    if (symtab.size() % sizeof(Sym) != 0)
        return fail(".symtab size not a multiple of the entry size");
    for (std::uint64_t off = 0; off < symtab.size(); off += sizeof(Sym)) {
        Sym sym{};
        std::memcpy(&sym, symtab.data() + off, sizeof(Sym));
        ElfSymbolInfo info;
        if (!readName(strtab, sym.name, info.name))
            return fail("symbol name offset out of bounds");
        info.value = sym.value;
        info.size = sym.size;
        info.info = sym.info;
        info.shndx = sym.shndx;
        if (sym.shndx == text_index &&
            (sym.value > parsed.text.size() ||
             parsed.text.size() - sym.value < sym.size))
            return fail("symbol range escapes .text");
        parsed.symbols.push_back(std::move(info));
    }
    if (parsed.symbols.empty() || parsed.symbols[0].info != 0)
        return fail("missing null symbol");

    if (rela_index >= 0) {
        std::vector<std::uint8_t> rela;
        if (!payload(shdrs[rela_index], rela))
            return fail(".rela.text payload out of bounds");
        if (rela.size() % sizeof(Rela) != 0)
            return fail(".rela.text size not a multiple of the entry size");
        for (std::uint64_t off = 0; off < rela.size();
             off += sizeof(Rela)) {
            Rela entry{};
            std::memcpy(&entry, rela.data() + off, sizeof(Rela));
            ElfRelocation reloc;
            reloc.offset = entry.offset;
            reloc.symbol = static_cast<std::uint32_t>(entry.info >> 32);
            reloc.type = static_cast<std::uint32_t>(entry.info);
            reloc.addend = entry.addend;
            if (reloc.offset > parsed.text.size() ||
                parsed.text.size() - reloc.offset < 4)
                return fail("relocation field escapes .text");
            if (reloc.symbol >= parsed.symbols.size())
                return fail("relocation symbol index out of range");
            parsed.relocations.push_back(reloc);
        }
    }

    parsed.ok = true;
    return parsed;
}

}  // namespace balign
