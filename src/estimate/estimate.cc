/**
 * @file
 * The program-level estimation driver and report rendering.
 *
 * Per procedure: heuristics -> transition probabilities -> Wu-Larus
 * frequencies. Across procedures: expected call frequencies give each
 * procedure an invocation count relative to one run of main, and a
 * strand probability (the chance one invocation feeds an inescapable
 * cycle, transitively through calls) pre-scales main's entry count so
 * the integer flow stranded program-wide stays within the budget the
 * prof.* lint slack tolerates. The integer profile itself is pushed
 * (propagate.cc), so per-block conservation is exact; a retry loop
 * rescales if the measured stranding still exceeds the budget, with an
 * empty (trivially conserving) profile as the final fallback.
 */

#include "estimate/estimate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "analysis/analysis.h"
#include "estimate/internal.h"

namespace balign {

double
combineEvidence(double a, double b)
{
    const double joint = a * b;
    const double denom = joint + (1.0 - a) * (1.0 - b);
    if (denom <= 0.0)
        return 0.5;  // contradictory certainties; stay neutral
    return joint / denom;
}

namespace {

/// Passes for the call-graph fixpoints (invocation counts and strand
/// probabilities); matches the walker's call-depth cap.
constexpr unsigned kCallGraphPasses = 64;

/// Invocation counts above this are runaway recursion; clamp.
constexpr double kInvocationCeiling = 1e12;

std::string
prob4(double p)
{
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.4f", p);
    return buffer;
}

std::string
prob6(double p)
{
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.6f", p);
    return buffer;
}

void
jsonString(std::ostream &os, const std::string &text)
{
    os << '"';
    for (const char c : text) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

}  // namespace

EstimateReport
estimateProfile(Program &program, const EstimateOptions &options)
{
    using namespace estimate_detail;

    EstimateReport report;
    report.heuristicHits.assign(allEstimateHeuristics().size(), 0);
    const std::size_t np = program.numProcs();
    report.edgeProbs.resize(np);
    report.procs.resize(np);

    std::vector<ProcAnalysis> analyses;
    analyses.reserve(np);
    std::vector<ProcFreqs> freqs(np);
    // callFreq[p][c]: expected calls from one invocation of p to c.
    std::vector<std::vector<double>> callFreq(np);

    for (ProcId p = 0; p < np; ++p) {
        const Procedure &proc = program.proc(p);
        analyses.push_back(ProcAnalysis::of(proc));
        report.edgeProbs[p] = branchProbabilities(
            proc, analyses[p], options, report.branches,
            report.heuristicHits);
        freqs[p] = propagateFrequencies(proc, analyses[p],
                                        report.edgeProbs[p], options);
        report.procs[p].proc = p;
        report.procs[p].irreducibleFallback = freqs[p].irreducibleFallback;
        report.procs[p].tripCappedLoops = freqs[p].tripCappedLoops;

        callFreq[p].assign(np, 0.0);
        for (const BasicBlock &block : proc.blocks()) {
            if (block.id >= freqs[p].block.size())
                continue;
            const double bfreq = freqs[p].block[block.id];
            for (const CallSite &site : block.calls) {
                if (site.callee < np)
                    callFreq[p][site.callee] += bfreq;
            }
        }
        for (const BasicBlock &block : proc.blocks()) {
            if (block.term == Terminator::CondBranch)
                ++report.conditionals;
        }
    }

    // Strand probability: chance that one invocation's flow reaches an
    // inescapable cycle, here or in a transitive callee.
    std::vector<double> strand(np, 0.0);
    for (unsigned pass = 0; pass < kCallGraphPasses; ++pass) {
        for (std::size_t p = np; p-- > 0;) {
            double s = freqs[p].trapMass;
            for (ProcId c = 0; c < np; ++c) {
                if (callFreq[p][c] > 0.0)
                    s += callFreq[p][c] * strand[c];
            }
            strand[p] = std::min(s, 1.0);
        }
    }
    for (ProcId p = 0; p < np; ++p)
        report.procs[p].strandProb = strand[p];

    // Invocation counts relative to one run of main (Jacobi fixpoint —
    // recursion converges against the ceiling instead of diverging).
    const ProcId main = program.mainProc();
    std::vector<double> invocations(np, 0.0);
    if (main < np) {
        invocations[main] = 1.0;
        std::vector<double> next(np, 0.0);
        for (unsigned pass = 0; pass < kCallGraphPasses; ++pass) {
            std::fill(next.begin(), next.end(), 0.0);
            next[main] = 1.0;
            for (ProcId p = 0; p < np; ++p) {
                if (invocations[p] <= 0.0)
                    continue;
                for (ProcId c = 0; c < np; ++c) {
                    if (callFreq[p][c] > 0.0) {
                        next[c] = std::min(
                            next[c] + invocations[p] * callFreq[p][c],
                            kInvocationCeiling);
                    }
                }
            }
            invocations.swap(next);
        }
    }

    // Scale main's entry count so expected stranding fits half the
    // budget, then push and re-check the actual integer stranding.
    Weight entry_scale = options.entryCount;
    const double s_main = main < np ? strand[main] : 0.0;
    if (s_main > 0.0) {
        entry_scale = static_cast<Weight>(std::clamp(
            static_cast<double>(options.strandBudget) / (2.0 * s_main),
            1.0, static_cast<double>(options.entryCount)));
    }

    for (;;) {
        program.clearWeights();
        Weight total_stranded = 0;
        for (ProcId p = 0; p < np; ++p) {
            double scaled =
                invocations[p] * static_cast<double>(entry_scale);
            scaled = std::min(scaled, 1e15);
            Weight entries =
                p == main ? entry_scale
                          : static_cast<Weight>(std::llround(scaled));
            report.procs[p].entryCount = entries;
            report.procs[p].stranded =
                pushFlow(program.proc(p), analyses[p],
                         report.edgeProbs[p], freqs[p], entries, options);
            total_stranded += report.procs[p].stranded;
        }
        if (total_stranded <= options.strandBudget) {
            report.totalStranded = total_stranded;
            break;
        }
        if (entry_scale <= 1) {
            // Even one activation strands too much (pathological trap
            // nests): fall back to the empty profile, which conserves
            // trivially (prof.degenerate notes it, nothing errors).
            program.clearWeights();
            for (ProcId p = 0; p < np; ++p) {
                report.procs[p].entryCount = 0;
                report.procs[p].stranded = 0;
            }
            report.totalStranded = 0;
            break;
        }
        entry_scale = std::max<Weight>(entry_scale / 4, 1);
    }

    program.setProfileProvenance(ProfileProvenance::Estimated);
    return report;
}

std::string
formatEstimateReport(const EstimateReport &report, const Program &program)
{
    std::ostringstream out;
    out << "estimate: " << program.name() << ": " << report.conditionals
        << " conditional branch(es) across " << program.numProcs()
        << " proc(s), stranded " << report.totalStranded << "\n";
    out << "heuristic hits:\n";
    const auto &heuristics = allEstimateHeuristics();
    for (std::size_t i = 0; i < heuristics.size(); ++i) {
        out << "  " << heuristics[i].name
            << " (p=" << prob4(heuristics[i].takenProb)
            << "): " << report.heuristicHits[i] << "\n";
    }
    for (const ProcEstimate &pe : report.procs) {
        if (pe.proc >= program.numProcs())
            continue;
        out << "  proc " << pe.proc << " '"
            << program.proc(pe.proc).name() << "': entries "
            << pe.entryCount;
        if (pe.irreducibleFallback)
            out << ", irreducible fallback";
        if (pe.tripCappedLoops > 0)
            out << ", trip-capped loops " << pe.tripCappedLoops;
        if (pe.strandProb > 0.0)
            out << ", strand-prob " << prob4(pe.strandProb);
        if (pe.stranded > 0)
            out << ", stranded " << pe.stranded;
        out << "\n";
    }
    for (const BranchEstimate &branch : report.branches) {
        out << "  proc " << branch.proc << " block " << branch.block
            << ": taken " << prob4(branch.takenProb);
        if (branch.votes.empty()) {
            out << " (no heuristic fired)";
        } else {
            out << " [";
            for (std::size_t i = 0; i < branch.votes.size(); ++i) {
                if (i > 0)
                    out << ", ";
                out << branch.votes[i].heuristic << "->"
                    << (branch.votes[i].predictsTaken ? "taken"
                                                      : "fall-through")
                    << " " << prob4(branch.votes[i].takenProb);
            }
            out << "]";
        }
        out << "\n";
    }
    return out.str();
}

void
writeEstimateReportJson(const EstimateReport &report,
                        const Program &program, std::ostream &os)
{
    os << "{\"schema_version\":" << kEstimateSchemaVersion
       << ",\"program\":";
    jsonString(os, program.name());
    os << ",\"conditionals\":" << report.conditionals
       << ",\"total_stranded\":" << report.totalStranded
       << ",\"heuristics\":[";
    const auto &heuristics = allEstimateHeuristics();
    for (std::size_t i = 0; i < heuristics.size(); ++i) {
        if (i > 0)
            os << ',';
        os << "{\"name\":\"" << heuristics[i].name
           << "\",\"taken_prob\":" << prob6(heuristics[i].takenProb)
           << ",\"hits\":" << report.heuristicHits[i] << "}";
    }
    os << "],\"procs\":[";
    for (std::size_t i = 0; i < report.procs.size(); ++i) {
        const ProcEstimate &pe = report.procs[i];
        if (i > 0)
            os << ',';
        os << "{\"proc\":" << pe.proc << ",\"name\":";
        jsonString(os, pe.proc < program.numProcs()
                           ? program.proc(pe.proc).name()
                           : std::string());
        os << ",\"irreducible_fallback\":"
           << (pe.irreducibleFallback ? "true" : "false")
           << ",\"strand_prob\":" << prob6(pe.strandProb)
           << ",\"entry_count\":" << pe.entryCount
           << ",\"stranded\":" << pe.stranded
           << ",\"trip_capped_loops\":" << pe.tripCappedLoops << "}";
    }
    os << "],\"branches\":[";
    for (std::size_t i = 0; i < report.branches.size(); ++i) {
        const BranchEstimate &branch = report.branches[i];
        if (i > 0)
            os << ',';
        os << "{\"proc\":" << branch.proc << ",\"block\":" << branch.block
           << ",\"taken_prob\":" << prob6(branch.takenProb)
           << ",\"votes\":[";
        for (std::size_t v = 0; v < branch.votes.size(); ++v) {
            if (v > 0)
                os << ',';
            os << "{\"heuristic\":\"" << branch.votes[v].heuristic
               << "\",\"predicts_taken\":"
               << (branch.votes[v].predictsTaken ? "true" : "false")
               << ",\"taken_prob\":" << prob6(branch.votes[v].takenProb)
               << "}";
        }
        os << "]}";
    }
    os << "]}";
}

}  // namespace balign
