/**
 * @file
 * Internals shared by the estimator's stages (heuristics.cc computes
 * per-edge transition probabilities, propagate.cc turns them into
 * frequencies and integer flow, estimate.cc drives the program-level
 * pass). Not installed; include estimate/estimate.h instead.
 */

#ifndef BALIGN_ESTIMATE_INTERNAL_H
#define BALIGN_ESTIMATE_INTERNAL_H

#include <vector>

#include "analysis/analysis.h"
#include "estimate/estimate.h"

namespace balign {
namespace estimate_detail {

/**
 * Per-edge transition probabilities for one procedure: edgeProb[i] is
 * the probability that an activation leaving proc.edge(i).src traverses
 * that edge. Out-edges of every block sum to 1 (blocks without
 * out-edges contribute nothing). Appends per-branch provenance to
 * @p branches and bumps @p hits (parallel to allEstimateHeuristics()).
 */
std::vector<double> branchProbabilities(const Procedure &proc,
                                        const ProcAnalysis &analysis,
                                        const EstimateOptions &options,
                                        std::vector<BranchEstimate> &branches,
                                        std::vector<std::size_t> &hits);

/// Real-valued per-invocation frequencies for one procedure.
struct ProcFreqs
{
    /// Expected executions of each block per procedure invocation.
    std::vector<double> block;
    /// Expected traversals of each edge per procedure invocation.
    std::vector<double> edge;
    /// Member of an inescapable cycle (SCC with no leaving edge).
    std::vector<bool> trapBlock;
    /// Expected flow entering trap SCCs per invocation, in [0, 1].
    double trapMass = 0.0;
    /// Bounded-iteration fallback ran (irreducible region).
    bool irreducibleFallback = false;
    /// Loops whose cyclic probability hit the trip-count prior.
    std::size_t tripCappedLoops = 0;
};

/**
 * Wu-Larus frequency propagation: closed-form cyclic frequencies over
 * the natural-loop forest when the CFG is reducible, a damped
 * Gauss-Seidel fallback otherwise. Entry frequency is 1.
 */
ProcFreqs propagateFrequencies(const Procedure &proc,
                               const ProcAnalysis &analysis,
                               const std::vector<double> &edgeProb,
                               const EstimateOptions &options);

/**
 * Deterministic integer flow push: injects @p entries activations at
 * the procedure entry and lets every block re-apportion exactly the
 * integer flow it receives across its out-edges (largest-remainder
 * rounding with per-edge carries; back-edge traversals additionally
 * capped near the closed-form totals in @p freqs so the trip prior
 * binds). Writes the resulting traversal counts into @p proc's edge
 * weights (which must be zero on entry) and returns the flow stranded
 * in trap SCCs.
 */
Weight pushFlow(Procedure &proc, const ProcAnalysis &analysis,
                const std::vector<double> &edgeProb, const ProcFreqs &freqs,
                Weight entries, const EstimateOptions &options);

}  // namespace estimate_detail
}  // namespace balign

#endif  // BALIGN_ESTIMATE_INTERNAL_H
