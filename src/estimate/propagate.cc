/**
 * @file
 * Frequency propagation and integer flow materialization.
 *
 * Two passes over one procedure:
 *
 *  1. propagateFrequencies — Wu-Larus (MICRO'94): real-valued expected
 *     block/edge executions per invocation. Loops are processed
 *     innermost-first; each loop's cyclic probability (the expected
 *     back-edge mass per header entry, capped by the trip-count prior)
 *     turns into a 1/(1-cp) header multiplier for the enclosing region.
 *     Irreducible CFGs get a bounded Gauss-Seidel fallback instead —
 *     explicitly flagged, never silently mis-modelled.
 *
 *  2. pushFlow — the integer profile. Real frequencies rounded per edge
 *     cannot guarantee the exact per-block conservation the prof.*
 *     rules demand, so the integer profile is *pushed*: every block
 *     re-apportions exactly the integer flow it received across its
 *     out-edges (largest-remainder rounding with signed per-edge
 *     carries, so low-probability exits accumulate credit and
 *     eventually drain cycling flow). Conservation is exact by
 *     construction. Shares follow each edge's REMAINING expected total
 *     (the pass-1 frequency times the entry count, minus weight already
 *     placed), not the raw transition probability: a loop therefore
 *     drains through its real exits once its back edge has carried its
 *     expected total, instead of cycling excess flow through whatever
 *     edge happens to be uncapped — which would corrupt the relative
 *     weights of hot branches (the one thing aligners consume). Only
 *     when every out-edge has met its target (saturated cold paths,
 *     trap SCCs) does apportionment fall back to the probabilities.
 *     Flow that enters a trap SCC (an inescapable cycle) circulates a
 *     few rounds — so infinite loops look hot — then strands, which
 *     the lint slack tolerates in the quantity estimate.cc budgets for.
 */

#include "estimate/internal.h"

#include <algorithm>
#include <cmath>

namespace balign {
namespace estimate_detail {

namespace {

/// Frequencies above this are runaway (fuzzer CFGs can chain dozens of
/// near-saturated loops); clamping keeps the arithmetic finite without
/// affecting well-behaved programs.
constexpr double kFreqCeiling = 1e15;

/// RPO sweeps pushFlow may spend before stranding whatever still moves.
constexpr unsigned kMaxPushPasses = 8192;

/// Sweeps during which trap-SCC blocks still forward flow, so the edges
/// of an inescapable cycle carry visible weight before the flow strands.
constexpr unsigned kTrapSpinPasses = 16;

/// Tarjan SCC over the valid out-edges of reachable blocks; returns the
/// blocks that sit in an SCC with no edge leaving it (counting only
/// cyclic SCCs: size > 1 or a self-loop). Iterative, deterministic.
std::vector<bool>
trapBlocks(const Procedure &proc, const RpoOrder &rpo)
{
    const std::size_t n = proc.numBlocks();
    std::vector<std::uint32_t> index(n, 0), lowlink(n, 0);
    std::vector<bool> onStack(n, false), visited(n, false);
    std::vector<std::int32_t> sccOf(n, -1);
    std::vector<BlockId> stack;
    std::uint32_t next_index = 1;
    std::int32_t next_scc = 0;
    std::vector<bool> sccCyclic;

    struct Frame
    {
        BlockId block;
        std::size_t edgePos;
    };
    std::vector<Frame> work;

    auto valid_dst = [&](std::uint32_t e) -> std::int64_t {
        if (e >= proc.numEdges())
            return -1;
        const BlockId dst = proc.edge(e).dst;
        if (dst >= n || !rpo.reachable(dst))
            return -1;
        return dst;
    };

    for (const BlockId root : rpo.order) {
        if (visited[root])
            continue;
        work.push_back({root, 0});
        visited[root] = true;
        index[root] = lowlink[root] = next_index++;
        stack.push_back(root);
        onStack[root] = true;
        while (!work.empty()) {
            Frame &frame = work.back();
            const BasicBlock &block = proc.block(frame.block);
            if (frame.edgePos < block.outEdges.size()) {
                const std::int64_t dst =
                    valid_dst(block.outEdges[frame.edgePos++]);
                if (dst < 0)
                    continue;
                const BlockId d = static_cast<BlockId>(dst);
                if (!visited[d]) {
                    visited[d] = true;
                    index[d] = lowlink[d] = next_index++;
                    stack.push_back(d);
                    onStack[d] = true;
                    work.push_back({d, 0});
                } else if (onStack[d]) {
                    lowlink[frame.block] =
                        std::min(lowlink[frame.block], index[d]);
                }
                continue;
            }
            const BlockId b = frame.block;
            work.pop_back();
            if (!work.empty()) {
                lowlink[work.back().block] =
                    std::min(lowlink[work.back().block], lowlink[b]);
            }
            if (lowlink[b] == index[b]) {
                // b roots an SCC; pop it and note whether it is cyclic.
                bool cyclic = false;
                std::size_t size = 0;
                for (std::size_t i = stack.size(); i-- > 0;) {
                    ++size;
                    if (stack[i] == b)
                        break;
                }
                BlockId member;
                std::size_t popped = 0;
                do {
                    member = stack.back();
                    stack.pop_back();
                    onStack[member] = false;
                    sccOf[member] = next_scc;
                    ++popped;
                    if (size == 1) {
                        // Self-loop check for singleton SCCs.
                        for (const std::uint32_t e :
                             proc.block(member).outEdges) {
                            if (valid_dst(e) ==
                                static_cast<std::int64_t>(member))
                                cyclic = true;
                        }
                    }
                } while (member != b);
                if (popped > 1)
                    cyclic = true;
                sccCyclic.push_back(cyclic);
                ++next_scc;
            }
        }
    }

    // An SCC is a trap iff it is cyclic and no edge leaves it.
    std::vector<bool> escapes(sccCyclic.size(), false);
    for (const BlockId b : rpo.order) {
        for (const std::uint32_t e : proc.block(b).outEdges) {
            const std::int64_t dst = valid_dst(e);
            if (dst >= 0 && sccOf[b] >= 0 &&
                sccOf[static_cast<BlockId>(dst)] != sccOf[b])
                escapes[sccOf[b]] = true;
        }
    }
    std::vector<bool> trap(n, false);
    for (const BlockId b : rpo.order) {
        if (sccOf[b] >= 0 && sccCyclic[sccOf[b]] && !escapes[sccOf[b]])
            trap[b] = true;
    }
    return trap;
}

}  // namespace

ProcFreqs
propagateFrequencies(const Procedure &proc, const ProcAnalysis &analysis,
                     const std::vector<double> &edgeProb,
                     const EstimateOptions &options)
{
    ProcFreqs freqs;
    const std::size_t n = proc.numBlocks();
    freqs.block.assign(n, 0.0);
    freqs.edge.assign(proc.numEdges(), 0.0);
    const RpoOrder &rpo = analysis.rpo();
    if (rpo.order.empty())
        return freqs;
    freqs.trapBlock = trapBlocks(proc, rpo);

    auto is_back_edge = [&](BlockId src, BlockId dst) {
        return analysis.doms.dominates(dst, src);
    };
    auto valid_edge = [&](std::uint32_t e) {
        return e < proc.numEdges() && proc.edge(e).src < n &&
               proc.edge(e).dst < n && rpo.reachable(proc.edge(e).src);
    };

    const LoopForest &loops = analysis.loops;
    // Index of the loop headed at each block, if any (one loop per
    // header after normalization).
    std::vector<std::size_t> headerLoop(n, kNoLoop);
    for (std::size_t i = 0; i < loops.loops.size(); ++i)
        headerLoop[loops.loops[i].header] = i;

    if (loops.irreducible()) {
        // Bounded-iteration fallback: damped Gauss-Seidel sweeps in RPO
        // order. Retreating flow re-enters on the next sweep; the pass
        // bound plays the role the cyclic-probability cap plays on the
        // reducible path.
        freqs.irreducibleFallback = true;
        std::vector<double> f(n, 0.0);
        for (unsigned pass = 0; pass < options.irreduciblePasses; ++pass) {
            for (const BlockId b : rpo.order) {
                double in = b == proc.entry() ? 1.0 : 0.0;
                for (const std::uint32_t e : proc.block(b).inEdges) {
                    if (valid_edge(e))
                        in += f[proc.edge(e).src] * edgeProb[e];
                }
                f[b] = std::min(in, kFreqCeiling);
            }
        }
        freqs.block = f;
    } else {
        // Wu-Larus closed form. cp[l] is loop l's capped cyclic
        // probability; headerMul[b] the resulting 1/(1-cp) multiplier.
        std::vector<double> cp(loops.loops.size(), 0.0);
        std::vector<double> headerMul(n, 1.0);
        std::vector<double> f(n, 0.0);

        // One propagation sweep over `region` (nullptr = whole CFG) with
        // unit input at `head`. Applies inner-loop multipliers at their
        // headers; `selfLoop` (the loop being measured) gets none.
        auto sweep = [&](const NaturalLoop *region, BlockId head,
                         std::size_t selfLoop) {
            std::fill(f.begin(), f.end(), 0.0);
            for (const BlockId b : rpo.order) {
                if (region && !region->contains(b))
                    continue;
                double in = b == head ? 1.0 : 0.0;
                for (const std::uint32_t e : proc.block(b).inEdges) {
                    if (!valid_edge(e))
                        continue;
                    const BlockId src = proc.edge(e).src;
                    if (region && !region->contains(src))
                        continue;
                    if (is_back_edge(src, b))
                        continue;  // folded into the header multiplier
                    in += f[src] * edgeProb[e];
                }
                if (headerLoop[b] != kNoLoop && headerLoop[b] != selfLoop)
                    in *= headerMul[b];
                f[b] = std::min(in, kFreqCeiling);
            }
        };

        // Innermost-first: loops are ordered outer-before-inner, so walk
        // the vector backwards.
        for (std::size_t l = loops.loops.size(); l-- > 0;) {
            const NaturalLoop &loop = loops.loops[l];
            sweep(&loop, loop.header, l);
            double cyclic = 0.0;
            for (const BlockId latch : loop.latches) {
                for (const std::uint32_t e : proc.block(latch).outEdges) {
                    if (valid_edge(e) && proc.edge(e).dst == loop.header)
                        cyclic += f[latch] * edgeProb[e];
                }
            }
            // The nested prior yields to hard evidence: a latch whose
            // branch carries deterministic pattern metadata announces
            // its real trip count, so only stochastic nested loops get
            // the tighter cap.
            bool patterned_latch = false;
            for (const BlockId latch : loop.latches)
                patterned_latch =
                    patterned_latch || proc.block(latch).patternLength > 0;
            const double cap = loop.depth >= 2 && !patterned_latch
                                   ? std::min(options.maxCyclicProb,
                                              options.nestedCyclicProb)
                                   : options.maxCyclicProb;
            if (cyclic > cap) {
                cyclic = cap;
                ++freqs.tripCappedLoops;
            }
            cp[l] = cyclic;
            headerMul[loop.header] = 1.0 / (1.0 - cyclic);
        }

        sweep(nullptr, proc.entry(), kNoLoop);
        freqs.block = f;
    }

    for (std::uint32_t e = 0; e < proc.numEdges(); ++e) {
        if (valid_edge(e)) {
            freqs.edge[e] = std::min(
                freqs.block[proc.edge(e).src] * edgeProb[e], kFreqCeiling);
        }
    }

    // Expected per-invocation mass crossing from free blocks into traps.
    double trapMass = 0.0;
    for (std::uint32_t e = 0; e < proc.numEdges(); ++e) {
        if (valid_edge(e) && !freqs.trapBlock[proc.edge(e).src] &&
            freqs.trapBlock[proc.edge(e).dst])
            trapMass += freqs.edge[e];
    }
    freqs.trapMass = std::min(trapMass, 1.0);
    return freqs;
}

Weight
pushFlow(Procedure &proc, const ProcAnalysis &analysis,
         const std::vector<double> &edgeProb, const ProcFreqs &freqs,
         Weight entries, const EstimateOptions &options)
{
    (void)options;
    const std::size_t n = proc.numBlocks();
    const RpoOrder &rpo = analysis.rpo();
    if (entries == 0 || rpo.order.empty() || proc.entry() >= n)
        return 0;

    auto valid_edge = [&](std::uint32_t e) {
        return e < proc.numEdges() && proc.edge(e).dst < n;
    };

    // Expected integer totals from the closed form: the targets the push
    // steers toward. Shares are proportional to the REMAINING target, so
    // the realized totals track pass 1 everywhere — in particular a loop
    // stops swallowing flow once its back edge has carried its expected
    // total, and the excess drains through the loop's exits instead of
    // inverting the latch branch's relative weights.
    const double scale = static_cast<double>(entries);
    std::vector<double> expect(proc.numEdges(), 0.0);
    for (std::uint32_t e = 0; e < proc.numEdges(); ++e) {
        if (valid_edge(e))
            expect[e] = std::min(freqs.edge[e] * scale, 1e18);
    }

    std::vector<Weight> pending(n, 0);
    std::vector<double> carry(proc.numEdges(), 0.0);
    pending[proc.entry()] = entries;

    std::vector<std::uint32_t> outs;
    std::vector<double> share;
    std::vector<std::uint32_t> order;

    for (unsigned pass = 0; pass < kMaxPushPasses; ++pass) {
        bool moved = false;
        for (const BlockId b : rpo.order) {
            const Weight x = pending[b];
            if (x == 0)
                continue;
            if (freqs.trapBlock[b] && pass >= kTrapSpinPasses)
                continue;  // strand: the cycle is inescapable
            outs.clear();
            for (const std::uint32_t e : proc.block(b).outEdges) {
                if (valid_edge(e))
                    outs.push_back(e);
            }
            if (outs.empty()) {
                pending[b] = 0;  // sink: Return or dead end absorbs
                continue;
            }

            // Shares from remaining expected totals; when every target is
            // met (saturated cold paths, trap SCCs) fall back to the
            // transition probabilities so residual flow still moves.
            share.assign(outs.size(), 0.0);
            double total = 0.0;
            for (std::size_t i = 0; i < outs.size(); ++i) {
                const std::uint32_t e = outs[i];
                share[i] = std::max(
                    expect[e] - static_cast<double>(proc.edge(e).weight),
                    0.0);
                total += share[i];
            }
            if (total <= 0.0) {
                for (std::size_t i = 0; i < outs.size(); ++i) {
                    share[i] = edgeProb[outs[i]];
                    total += share[i];
                }
            }
            const double uniform = 1.0 / static_cast<double>(outs.size());
            for (std::size_t i = 0; i < outs.size(); ++i)
                share[i] = total > 0.0 ? share[i] / total : uniform;

            // Largest-remainder apportionment against the carry-adjusted
            // targets; the correction step pins the total to exactly x.
            std::vector<Weight> alloc(outs.size(), 0);
            Weight allocated = 0;
            for (std::size_t i = 0; i < outs.size(); ++i) {
                const double target =
                    static_cast<double>(x) * share[i] + carry[outs[i]];
                const double base = std::floor(std::max(target, 0.0));
                alloc[i] = static_cast<Weight>(
                    std::min(base, static_cast<double>(x)));
                allocated += alloc[i];
            }
            order.resize(outs.size());
            for (std::size_t i = 0; i < outs.size(); ++i)
                order[i] = static_cast<std::uint32_t>(i);
            auto frac = [&](std::size_t i) {
                return static_cast<double>(x) * share[i] + carry[outs[i]] -
                       static_cast<double>(alloc[i]);
            };
            while (allocated > x) {  // over-allocation from carries
                std::size_t victim = outs.size();
                for (std::size_t i = 0; i < outs.size(); ++i) {
                    if (alloc[i] > 0 &&
                        (victim == outs.size() || frac(i) < frac(victim)))
                        victim = i;
                }
                --alloc[victim];
                --allocated;
            }
            if (allocated < x) {
                std::stable_sort(order.begin(), order.end(),
                                 [&](std::uint32_t a, std::uint32_t c) {
                                     return frac(a) > frac(c);
                                 });
                std::size_t i = 0;
                while (allocated < x) {
                    ++alloc[order[i % outs.size()]];
                    ++allocated;
                    ++i;
                }
            }
            for (std::size_t i = 0; i < outs.size(); ++i) {
                carry[outs[i]] = static_cast<double>(x) * share[i] +
                                 carry[outs[i]] -
                                 static_cast<double>(alloc[i]);
                // Keep carries bounded even after cap-induced skew.
                carry[outs[i]] =
                    std::clamp(carry[outs[i]], -2.0, 2.0);
                if (alloc[i] > 0) {
                    Edge &edge = proc.edge(outs[i]);
                    edge.weight += alloc[i];
                    pending[edge.dst] += alloc[i];
                    moved = true;
                }
            }
            pending[b] -= x;  // self-loop allocations stay pending
        }
        if (!moved)
            break;
    }

    Weight stranded = 0;
    for (BlockId b = 0; b < n; ++b) {
        if (!proc.block(b).outEdges.empty())
            stranded += pending[b];
    }
    return stranded;
}

}  // namespace estimate_detail
}  // namespace balign
