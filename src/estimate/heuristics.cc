/**
 * @file
 * The branch-heuristic registry and per-branch probability assignment.
 *
 * Each heuristic is a syntactic test over the CFG and its loop forest in
 * the Ball-Larus tradition ("Branch Prediction for Free", PLDI'93): if
 * the test applies to a conditional branch, it votes for one successor
 * with the registry's empirical probability. Multiple firing heuristics
 * are combined with the Dempster-Shafer rule (estimate.cc). Heuristics
 * this IR cannot express (pointer/opcode guards — there are no operand
 * values) are replaced by the structural analogues the metadata does
 * support: dead-end successors and the deterministic outcome pattern.
 */

#include "estimate/internal.h"

#include <algorithm>
#include <bit>

namespace balign {

const std::vector<HeuristicInfo> &
allEstimateHeuristics()
{
    // Probabilities follow Ball-Larus/Wu-Larus: the measured frequency
    // with which the heuristic's prediction was right on their suites.
    static const std::vector<HeuristicInfo> heuristics = {
        {"loop-branch", 0.88,
         "a back edge (latch to dominating header) is taken"},
        {"loop-exit", 0.80,
         "a branch inside a loop keeps iterating rather than exit"},
        {"loop-header", 0.70,
         "the successor that enters a fresh loop is preferred"},
        {"call", 0.78,
         "the successor without embedded call sites is preferred"},
        {"return", 0.72,
         "the successor that does not immediately return is preferred"},
        {"dead-end", 0.85,
         "the successor that is not a non-return dead end is preferred"},
        {"pattern", 0.50,
         "deterministic outcome pattern metadata: taken fraction of one "
         "period (probability is computed per branch)"},
        {"correlated", 0.50,
         "outcome-correlation metadata: the branch realizes the "
         "controlling branch's rate, possibly inverted (probability is "
         "copied per branch)"},
        {"guard", 0.62,
         "a forward conditional no other heuristic explains is a guard "
         "and falls through"},
    };
    return heuristics;
}

namespace estimate_detail {

namespace {

enum HeuristicIndex : std::size_t {
    kLoopBranch,
    kLoopExit,
    kLoopHeader,
    kCall,
    kReturn,
    kDeadEnd,
    kPattern,
    kCorrelated,
    kGuard,
};

double
clampProb(double p, double floor)
{
    return std::min(std::max(p, floor), 1.0 - floor);
}

/// One vote: the heuristic at @p index predicts @p taken's side.
void
vote(std::vector<HeuristicVote> &votes, std::vector<std::size_t> &hits,
     std::size_t index, bool predictsTaken, double prob)
{
    const HeuristicInfo &info = allEstimateHeuristics()[index];
    HeuristicVote v;
    v.heuristic = info.name;
    v.predictsTaken = predictsTaken;
    v.takenProb = predictsTaken ? prob : 1.0 - prob;
    votes.push_back(v);
    ++hits[index];
}

}  // namespace

std::vector<double>
branchProbabilities(const Procedure &proc, const ProcAnalysis &analysis,
                    const EstimateOptions &options,
                    std::vector<BranchEstimate> &branches,
                    std::vector<std::size_t> &hits)
{
    std::vector<double> edgeProb(proc.numEdges(), 0.0);
    const LoopForest &loops = analysis.loops;
    // Combined taken-probability per already-estimated conditional, for
    // the correlated heuristic (-1 = not a shaped conditional / not yet
    // seen; the generator's controlling branch always precedes its
    // followers in id order, matching this loop).
    std::vector<double> blockProb(proc.numBlocks(), -1.0);

    // A back edge in the dominator sense; false for unreachable blocks.
    auto is_back_edge = [&](BlockId src, BlockId dst) {
        return analysis.doms.dominates(dst, src);
    };
    // dst starts a loop that does not already contain src.
    auto enters_fresh_loop = [&](BlockId src, BlockId dst) {
        for (const NaturalLoop &loop : loops.loops) {
            if (loop.header == dst && !loop.contains(src))
                return true;
        }
        return false;
    };
    auto is_dead_end = [&](const BasicBlock &block) {
        return block.outEdges.empty() && block.term != Terminator::Return;
    };

    for (const BasicBlock &block : proc.blocks()) {
        // Robustness first (the lint rules run the estimator before
        // validation): only edges with in-range endpoints participate.
        std::vector<std::uint32_t> outs;
        for (const std::uint32_t index : block.outEdges) {
            if (index < proc.numEdges() &&
                proc.edge(index).dst < proc.numBlocks())
                outs.push_back(index);
        }
        if (outs.empty())
            continue;

        const std::int64_t taken_index = proc.takenEdge(block.id);
        const std::int64_t fall_index = proc.fallThroughEdge(block.id);
        const bool shaped_cond =
            block.term == Terminator::CondBranch && outs.size() == 2 &&
            taken_index >= 0 && fall_index >= 0 &&
            taken_index != fall_index;
        if (!shaped_cond) {
            // Single-successor blocks carry probability 1; indirect
            // jumps (and malformed shapes) spread uniformly — there is
            // no static evidence to order computed targets.
            const double share = 1.0 / static_cast<double>(outs.size());
            for (const std::uint32_t index : outs)
                edgeProb[index] = share;
            continue;
        }

        const BlockId taken_dst =
            proc.edge(static_cast<std::uint32_t>(taken_index)).dst;
        const BlockId fall_dst =
            proc.edge(static_cast<std::uint32_t>(fall_index)).dst;
        const BasicBlock &taken_block = proc.block(taken_dst);
        const BasicBlock &fall_block = proc.block(fall_dst);

        BranchEstimate estimate;
        estimate.proc = proc.id();
        estimate.block = block.id;

        // loop-branch: exactly one side is a back edge.
        const bool taken_back = is_back_edge(block.id, taken_dst);
        const bool fall_back = is_back_edge(block.id, fall_dst);
        if (taken_back != fall_back) {
            vote(estimate.votes, hits, kLoopBranch, taken_back,
                 allEstimateHeuristics()[kLoopBranch].takenProb);
        }

        // loop-exit: exactly one side leaves the innermost loop.
        const std::size_t loop_index =
            block.id < loops.innermost.size() ? loops.innermost[block.id]
                                              : kNoLoop;
        if (loop_index != kNoLoop) {
            const NaturalLoop &loop = loops.loops[loop_index];
            const bool taken_in = loop.contains(taken_dst);
            const bool fall_in = loop.contains(fall_dst);
            if (taken_in != fall_in) {
                vote(estimate.votes, hits, kLoopExit, taken_in,
                     allEstimateHeuristics()[kLoopExit].takenProb);
            }
        }

        // loop-header: exactly one side enters a loop it is not in.
        const bool taken_header = enters_fresh_loop(block.id, taken_dst);
        const bool fall_header = enters_fresh_loop(block.id, fall_dst);
        if (taken_header != fall_header) {
            vote(estimate.votes, hits, kLoopHeader, taken_header,
                 allEstimateHeuristics()[kLoopHeader].takenProb);
        }

        // call: exactly one side lands in a block with call sites.
        const bool taken_calls = !taken_block.calls.empty();
        const bool fall_calls = !fall_block.calls.empty();
        if (taken_calls != fall_calls) {
            vote(estimate.votes, hits, kCall, fall_calls,
                 allEstimateHeuristics()[kCall].takenProb);
        }

        // return: exactly one side immediately returns.
        const bool taken_ret = taken_block.term == Terminator::Return;
        const bool fall_ret = fall_block.term == Terminator::Return;
        if (taken_ret != fall_ret) {
            vote(estimate.votes, hits, kReturn, fall_ret,
                 allEstimateHeuristics()[kReturn].takenProb);
        }

        // dead-end: exactly one side falls off a non-return dead end.
        const bool taken_dead = is_dead_end(taken_block);
        const bool fall_dead = is_dead_end(fall_block);
        if (taken_dead != fall_dead) {
            vote(estimate.votes, hits, kDeadEnd, fall_dead,
                 allEstimateHeuristics()[kDeadEnd].takenProb);
        }

        // pattern: deterministic outcome metadata gives the taken
        // fraction of one period directly (clamped: the combiner must
        // never see certainty).
        if (block.patternLength > 0) {
            const unsigned len = std::min<unsigned>(block.patternLength, 32);
            const std::uint32_t mask =
                len == 32 ? block.patternMask
                          : block.patternMask & ((1u << len) - 1u);
            const double fraction =
                static_cast<double>(std::popcount(mask)) /
                static_cast<double>(len);
            const double p = clampProb(fraction, options.probFloor);
            vote(estimate.votes, hits, kPattern, p >= 0.5, p >= 0.5 ? p
                                                                    : 1 - p);
        }

        // correlated: outcome-correlation metadata pins this branch's
        // realized rate to the controlling branch's (inverted when the
        // correlation is negative) — so once the controller has an
        // estimate, copy it. Strictly structural: the metadata names the
        // controller, never the outcome.
        if (block.correlatedWith != kNoBlock &&
            block.correlatedWith < proc.numBlocks() &&
            blockProb[block.correlatedWith] >= 0.0) {
            double p = blockProb[block.correlatedWith];
            if (block.correlatedInvert)
                p = 1.0 - p;
            p = clampProb(p, options.probFloor);
            vote(estimate.votes, hits, kCorrelated, p >= 0.5,
                 p >= 0.5 ? p : 1 - p);
        }

        // guard: a forward conditional (no back edge on either side)
        // that no heuristic above could explain is most often an
        // if-guard around rare work — error paths, cold feature flags —
        // and falls through (Ball-Larus's measured default for forward
        // branches). Fires only in the absence of other evidence so
        // every previously-explained branch keeps its estimate.
        if (estimate.votes.empty() && !taken_back && !fall_back) {
            vote(estimate.votes, hits, kGuard, false,
                 allEstimateHeuristics()[kGuard].takenProb);
        }

        // Dempster-Shafer combination, 0.5 neutral start.
        double combined = 0.5;
        for (const HeuristicVote &v : estimate.votes)
            combined = combineEvidence(combined, v.takenProb);
        estimate.takenProb = clampProb(combined, options.probFloor);
        blockProb[block.id] = estimate.takenProb;

        edgeProb[static_cast<std::uint32_t>(taken_index)] =
            estimate.takenProb;
        edgeProb[static_cast<std::uint32_t>(fall_index)] =
            1.0 - estimate.takenProb;
        branches.push_back(std::move(estimate));
    }
    return edgeProb;
}

}  // namespace estimate_detail
}  // namespace balign
