/**
 * @file
 * Static profile estimation: Ball-Larus-style branch heuristics combined
 * with Dempster-Shafer evidence, then Wu-Larus frequency propagation —
 * a flow-conserving edge profile synthesized from the CFG alone.
 *
 * Every other profile source in this repo (measured, degraded) starts
 * from a trace. The estimator starts from nothing: a registry of named
 * syntactic heuristics assigns each conditional branch a taken
 * probability (loop-branch, loop-exit, loop-header, call, return,
 * dead-end, pattern — whatever the CFG metadata supports), multiple
 * firing heuristics are combined per branch with the Dempster-Shafer
 * rule Wu & Larus use (MICRO'94), and the resulting per-edge transition
 * probabilities are propagated into block/edge frequencies over the
 * natural-loop forest: closed-form cyclic frequencies for reducible
 * loops under a capped trip-count prior, an explicit bounded-iteration
 * fallback for irreducible regions flagged by analysis/loops.
 *
 * The synthesized profile must drop into the existing profile slot,
 * which means passing the prof.* lint rules (lint/profile_rules.cc):
 * per-block inflow == outflow for interior blocks, loop-boundary
 * conservation, zero weight on unreachable edges and in uncalled
 * procedures. Real-valued frequencies cannot guarantee that after
 * rounding, so the integer profile is materialized by a deterministic
 * flow-push pass (propagate.cc): each block re-apportions exactly the
 * integer flow it received across its out-edges (largest-remainder
 * rounding with per-edge carry), so conservation holds by construction.
 * Flow that enters an inescapable cycle (a trap SCC — the static image
 * of an infinite loop) is deliberately stranded there, and procedure
 * entry counts are pre-scaled so the program-wide stranded total stays
 * within the truncated-walk slack the lint rules already allow.
 *
 * The estimator never reads Edge::bias — that is the walker's ground
 * truth. Everything here is derived from structure (terminators, loop
 * forest, call sites) plus the deterministic pattern metadata.
 */

#ifndef BALIGN_ESTIMATE_ESTIMATE_H
#define BALIGN_ESTIMATE_ESTIMATE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cfg/program.h"

namespace balign {

/// Version of the `balign estimate` JSON schema (`schema_version`).
inline constexpr int kEstimateSchemaVersion = 1;

/// Tunables. The defaults are used everywhere (benches, lint, fuzzing);
/// they are exposed mainly so tests can probe edge behaviour.
struct EstimateOptions
{
    /// Invocation count assigned to main (the profile's global scale).
    /// Procedures that can reach an inescapable cycle get a reduced
    /// count so the stranded flow stays within the lint slack.
    Weight entryCount = 1u << 16;

    /// Trip-count prior: cyclic probability is capped at this value, so
    /// a loop contributes at most 1 / (1 - cap) iterations per entry
    /// (default cap 15/16 = 16 iterations, Wu-Larus use a similar
    /// epsilon guard).
    double maxCyclicProb = 1.0 - 1.0 / 16.0;

    /// Tighter trip-count prior for nested loops (depth >= 2): inner
    /// loops run fewer iterations per entry than their enclosing loop
    /// runs in total (the classic profile observation), so their cyclic
    /// probability is capped lower — about 2.5 iterations — to keep
    /// deep nests from dwarfing every acyclic path in the estimate.
    double nestedCyclicProb = 0.60;

    /// Combined branch probabilities are clamped to
    /// [probFloor, 1 - probFloor]: static evidence is never certainty.
    double probFloor = 1.0 / 64.0;

    /// Gauss-Seidel passes for the irreducible-region fallback.
    unsigned irreduciblePasses = 16;

    /// Program-wide budget for integer flow stranded in trap SCCs; kept
    /// below LintOptions::flowSlack so estimated profiles always pass
    /// prof.flow-conservation.
    Weight strandBudget = 48;
};

/// Registry entry for one branch heuristic.
struct HeuristicInfo
{
    const char *name;     ///< stable id ("loop-branch", "call", ...)
    double takenProb;     ///< probability assigned to the predicted edge
    const char *summary;  ///< one-line description
};

/// Every heuristic the estimator knows, in registry order.
const std::vector<HeuristicInfo> &allEstimateHeuristics();

/// One heuristic's vote on one conditional branch.
struct HeuristicVote
{
    const char *heuristic;  ///< registry name
    bool predictsTaken;     ///< direction of the vote
    double takenProb;       ///< the vote as a taken-probability
};

/// Per-branch provenance: which heuristics fired and the combined result.
struct BranchEstimate
{
    ProcId proc = kNoProc;
    BlockId block = kNoBlock;
    /// Dempster-Shafer combination of the votes, clamped; 0.5 when no
    /// heuristic fired.
    double takenProb = 0.5;
    std::vector<HeuristicVote> votes;
};

/// Per-procedure estimation summary.
struct ProcEstimate
{
    ProcId proc = kNoProc;
    /// Closed-form propagation was impossible (analysis/loops flagged an
    /// irreducible region); the bounded-iteration fallback ran instead.
    bool irreducibleFallback = false;
    /// Expected fraction of one invocation's flow that reaches a trap
    /// SCC (an inescapable cycle), transitively through calls.
    double strandProb = 0.0;
    /// Integer invocation count the synthesizer injected at the entry.
    Weight entryCount = 0;
    /// Integer flow left stranded inside trap SCCs.
    Weight stranded = 0;
    /// Number of trip-capped loops (cyclic probability hit the prior).
    std::size_t tripCappedLoops = 0;
};

/// What estimateProfile computed, for reports and the est.* lint rules.
struct EstimateReport
{
    /// One entry per conditional branch, in (proc, block) order.
    std::vector<BranchEstimate> branches;
    /// One entry per procedure, in id order.
    std::vector<ProcEstimate> procs;
    /// Fire counts parallel to allEstimateHeuristics().
    std::vector<std::size_t> heuristicHits;
    /// Per-procedure, per-edge-index transition probabilities (the
    /// distribution the est.prob rule validates and the push pass uses).
    std::vector<std::vector<double>> edgeProbs;
    /// Program-wide integer flow left in trap SCCs (<= strandBudget).
    Weight totalStranded = 0;
    /// Conditional branches seen.
    std::size_t conditionals = 0;
};

/**
 * Dempster-Shafer combination of two taken-probabilities (the Wu-Larus
 * two-hypothesis special case): both pieces of evidence agree on the
 * hypothesis space {taken, not-taken}, so the combined belief is
 * a*b / (a*b + (1-a)*(1-b)). Symmetric, associative, 0.5 is neutral.
 */
double combineEvidence(double a, double b);

/**
 * Replaces @p program's edge weights with the synthesized static
 * profile and tags its provenance as Estimated. The CFG structure and
 * edge biases are untouched. Deterministic: same program, same options,
 * byte-identical weights — no RNG, no threads, no iteration-order
 * dependence on anything but the IR.
 */
EstimateReport estimateProfile(Program &program,
                               const EstimateOptions &options = {});

/**
 * Renders the report as text: the per-heuristic hit table, per-procedure
 * summaries (fallbacks, stranded flow) and per-branch provenance lines.
 */
std::string formatEstimateReport(const EstimateReport &report,
                                 const Program &program);

/// JSON rendering (schema_version = kEstimateSchemaVersion; see README).
void writeEstimateReportJson(const EstimateReport &report,
                             const Program &program, std::ostream &os);

}  // namespace balign

#endif  // BALIGN_ESTIMATE_ESTIMATE_H
